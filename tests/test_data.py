"""Unit tests for datasets, loaders, transforms, synthetic generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    ArrayDataset,
    Compose,
    DataLoader,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    Subset,
    SyntheticCIFAR10,
    SyntheticImageNet,
    SyntheticMNIST,
    bilinear_upsample,
    make_classification_images,
    train_val_split,
)


class TestArrayDataset:
    def test_basic(self, rng):
        ds = ArrayDataset(rng.normal(size=(10, 3, 4, 4)), np.arange(10) % 3)
        assert len(ds) == 10
        x, y = ds[2]
        assert x.shape == (3, 4, 4)
        assert isinstance(y, int)
        assert ds.num_classes == 3
        assert ds.sample_shape == (3, 4, 4)

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(rng.normal(size=(10, 4)), np.zeros(5))

    def test_subset(self, rng):
        ds = ArrayDataset(np.arange(20).reshape(10, 2).astype(float), np.arange(10))
        sub = Subset(ds, [3, 5])
        assert len(sub) == 2
        assert sub[0][1] == 3

    def test_train_val_split_partition(self, rng):
        ds = ArrayDataset(rng.normal(size=(100, 2)), np.arange(100))
        tr, va = train_val_split(ds, 0.2, seed=1)
        assert len(tr) == 80 and len(va) == 20
        labels = sorted(np.concatenate([tr.y, va.y]).tolist())
        assert labels == list(range(100))  # nothing lost or duplicated

    def test_split_validation(self, rng):
        ds = ArrayDataset(rng.normal(size=(10, 2)), np.zeros(10))
        with pytest.raises(ValueError):
            train_val_split(ds, 1.5)


class TestDataLoader:
    def _ds(self, n=20):
        return ArrayDataset(np.arange(n * 2).reshape(n, 2).astype(float), np.arange(n))

    def test_batch_shapes(self):
        dl = DataLoader(self._ds(), batch_size=8)
        batches = list(dl)
        assert [len(b[1]) for b in batches] == [8, 8, 4]
        assert len(dl) == 3

    def test_drop_last(self):
        dl = DataLoader(self._ds(), batch_size=8, drop_last=True)
        assert [len(b[1]) for b in dl] == [8, 8]
        assert len(dl) == 2

    def test_no_shuffle_is_ordered(self):
        dl = DataLoader(self._ds(), batch_size=5, shuffle=False)
        _, y = next(iter(dl))
        np.testing.assert_array_equal(y, [0, 1, 2, 3, 4])

    def test_shuffle_deterministic_per_seed(self):
        y1 = np.concatenate([y for _, y in DataLoader(self._ds(), 4, shuffle=True, seed=3)])
        y2 = np.concatenate([y for _, y in DataLoader(self._ds(), 4, shuffle=True, seed=3)])
        np.testing.assert_array_equal(y1, y2)

    def test_shuffle_differs_across_seeds(self):
        y1 = np.concatenate([y for _, y in DataLoader(self._ds(), 4, shuffle=True, seed=3)])
        y2 = np.concatenate([y for _, y in DataLoader(self._ds(), 4, shuffle=True, seed=4)])
        assert not np.array_equal(y1, y2)

    def test_epochs_reshuffle(self):
        dl = DataLoader(self._ds(), 20, shuffle=True, seed=0)
        y1 = next(iter(dl))[1].copy()
        y2 = next(iter(dl))[1].copy()
        assert not np.array_equal(y1, y2)

    def test_shuffle_is_partition(self):
        dl = DataLoader(self._ds(), 7, shuffle=True, seed=0)
        ys = np.sort(np.concatenate([y for _, y in dl]))
        np.testing.assert_array_equal(ys, np.arange(20))

    def test_transform_applied(self):
        dl = DataLoader(self._ds(), 5, transform=lambda b, rng: b * 0.0)
        x, _ = next(iter(dl))
        np.testing.assert_allclose(x, 0.0)

    def test_one_batch(self):
        x, y = DataLoader(self._ds(), 6).one_batch()
        assert len(y) == 6

    def test_one_batch_does_not_shift_epoch_stream(self):
        """Regression: one_batch() used to consume a permutation from the
        shared RNG, silently changing every subsequent epoch's batches."""
        clean = DataLoader(self._ds(), 4, shuffle=True, seed=3)
        probed = DataLoader(self._ds(), 4, shuffle=True, seed=3)
        probed.one_batch()
        for epoch in range(3):
            probed.one_batch()  # interleave probes between epochs too
            for (xc, yc), (xp, yp) in zip(clean, probed):
                np.testing.assert_array_equal(yc, yp)
                np.testing.assert_array_equal(xc, xp)

    def test_one_batch_is_deterministic(self):
        a = DataLoader(self._ds(), 6, shuffle=True, seed=5)
        b = DataLoader(self._ds(), 6, shuffle=True, seed=5)
        xa, ya = a.one_batch()
        a.one_batch()  # further calls don't drift either
        xa2, ya2 = a.one_batch()
        xb, yb = b.one_batch()
        np.testing.assert_array_equal(ya, yb)
        np.testing.assert_array_equal(xa, xb)
        np.testing.assert_array_equal(ya, ya2)
        np.testing.assert_array_equal(xa, xa2)

    def test_one_batch_transform_rng_does_not_leak(self):
        """Stochastic transforms in one_batch() draw from the forked stream,
        leaving the epoch-stream transform RNG untouched."""
        noise = lambda b, rng: b + rng.standard_normal(b.shape)
        clean = DataLoader(self._ds(), 4, shuffle=True, seed=7, transform=noise)
        probed = DataLoader(self._ds(), 4, shuffle=True, seed=7, transform=noise)
        probed.one_batch()
        for (xc, _), (xp, _) in zip(clean, probed):
            np.testing.assert_array_equal(xc, xp)

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            DataLoader(self._ds(), batch_size=0)

    @given(n=st.integers(1, 50), bs=st.integers(1, 16))
    @settings(max_examples=25, deadline=None)
    def test_len_matches_iteration(self, n, bs):
        ds = ArrayDataset(np.zeros((n, 2)), np.zeros(n))
        dl = DataLoader(ds, batch_size=bs)
        assert len(list(dl)) == len(dl)


class TestTransforms:
    def test_normalize_math(self, rng):
        batch = rng.normal(size=(4, 2, 3, 3)).astype(np.float32)
        t = Normalize([1.0, 2.0], [2.0, 4.0])
        out = t(batch, rng)
        np.testing.assert_allclose(out[:, 0], (batch[:, 0] - 1) / 2, rtol=1e-5)
        np.testing.assert_allclose(out[:, 1], (batch[:, 1] - 2) / 4, rtol=1e-5)

    def test_normalize_rejects_zero_std(self):
        with pytest.raises(ValueError):
            Normalize([0.0], [0.0])

    def test_flip_preserves_content(self, rng):
        batch = rng.normal(size=(8, 1, 4, 4)).astype(np.float32)
        out = RandomHorizontalFlip(1.0)(batch, np.random.default_rng(0))
        np.testing.assert_allclose(out, batch[:, :, :, ::-1])

    def test_flip_p_zero_identity(self, rng):
        batch = rng.normal(size=(8, 1, 4, 4)).astype(np.float32)
        out = RandomHorizontalFlip(0.0)(batch, np.random.default_rng(0))
        np.testing.assert_allclose(out, batch)

    def test_crop_preserves_shape(self, rng):
        batch = rng.normal(size=(6, 3, 8, 8)).astype(np.float32)
        out = RandomCrop(2)(batch, np.random.default_rng(0))
        assert out.shape == batch.shape

    def test_crop_zero_padding_identity(self, rng):
        batch = rng.normal(size=(2, 1, 4, 4)).astype(np.float32)
        assert RandomCrop(0)(batch, np.random.default_rng(0)) is batch

    def test_crop_validation(self):
        with pytest.raises(ValueError):
            RandomCrop(-1)

    def test_compose_order(self, rng):
        batch = np.ones((1, 1, 2, 2), dtype=np.float32)
        t = Compose([lambda b, r: b + 1, lambda b, r: b * 10])
        np.testing.assert_allclose(t(batch, rng), 20.0)


class TestSyntheticGeneration:
    def test_shapes_and_dtypes(self):
        x, y = make_classification_images(50, 5, channels=3, size=8, seed=0)
        assert x.shape == (50, 3, 8, 8)
        assert x.dtype == np.float32
        assert y.dtype == np.int64
        assert set(np.unique(y)) <= set(range(5))

    def test_balanced_classes(self):
        _, y = make_classification_images(100, 10, size=8, seed=0)
        counts = np.bincount(y, minlength=10)
        assert counts.min() == counts.max() == 10

    def test_deterministic(self):
        x1, y1 = make_classification_images(20, 4, size=8, seed=5)
        x2, y2 = make_classification_images(20, 4, size=8, seed=5)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_seed_changes_data(self):
        x1, _ = make_classification_images(20, 4, size=8, seed=5)
        x2, _ = make_classification_images(20, 4, size=8, seed=6)
        assert not np.array_equal(x1, x2)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_classification_images(3, 10)

    def test_bilinear_upsample_constant(self):
        coarse = np.full((2, 2), 3.0)
        out = bilinear_upsample(coarse, (8, 8))
        np.testing.assert_allclose(out, 3.0)

    def test_bilinear_upsample_shape(self, rng):
        out = bilinear_upsample(rng.normal(size=(3, 4, 4)), (16, 16))
        assert out.shape == (3, 16, 16)

    def test_classes_are_separable_by_simple_model(self):
        # nearest-prototype classification must beat chance by a wide margin,
        # otherwise pruning curves would be pure noise
        x, y = make_classification_images(400, 4, size=8, noise=0.4, seed=1)
        protos = np.stack([x[y == k].mean(axis=0) for k in range(4)])
        flat = x.reshape(len(x), -1)
        pf = protos.reshape(4, -1)
        pred = np.argmax(flat @ pf.T, axis=1)
        assert (pred == y).mean() > 0.5


class TestDatasetBundles:
    def test_cifar_bundle(self):
        ds = SyntheticCIFAR10(n_train=64, n_val=32, size=8, seed=0)
        assert len(ds.train) == 64 and len(ds.val) == 32
        assert ds.train.sample_shape == (3, 8, 8)
        assert ds.train.num_classes == 10
        # transforms runnable
        rng = np.random.default_rng(0)
        out = ds.train_transform()(ds.train.x[:4], rng)
        assert out.shape == (4, 3, 8, 8)

    def test_imagenet_bundle_top5_meaningful(self):
        ds = SyntheticImageNet(n_train=64, n_val=32, n_classes=12, size=8)
        assert ds.train.num_classes == 12

    def test_imagenet_class_floor(self):
        with pytest.raises(ValueError):
            SyntheticImageNet(n_train=32, n_val=16, n_classes=3)

    def test_mnist_is_sparse_grayscale(self):
        ds = SyntheticMNIST(n_train=64, n_val=16)
        assert ds.train.sample_shape == (1, 28, 28)
        frac_zero = (ds.train.x == 0).mean()
        assert frac_zero > 0.3  # "composed mostly of zeros" (§4.2)

    def test_train_val_disjoint_streams(self):
        ds = SyntheticCIFAR10(n_train=50, n_val=50, size=8, seed=0)
        assert not np.array_equal(ds.train.x[:50], ds.val.x[:50])
