"""Shared executor-test fixtures: deterministic fault injection via specs.

Registers a ``crashy`` dataset whose *runtime and failure behavior are part
of the spec* (``dataset_kwargs``), so executor tests inject worker crashes,
hangs, and flaky-then-succeed cells through the normal execution path — no
monkeypatching of executor or queue internals.  Because the behavior rides
in the spec, it survives serialization: the same injected fault fires in a
serial run, a forked process-pool worker, and a separate ``python -m repro
worker --import exp_fixtures`` process.

Behavior kwargs (all consumed here, never passed to the dataset):

``behavior``
    ``"ok"`` (default), ``"raise"`` (always fail with :class:`CrashyError`),
    ``"flaky"`` (fail the first ``fail_times`` executions, then succeed),
    ``"exit"`` (``os._exit`` — a hard worker crash that skips all cleanup;
    with ``fail_times`` set, only the first ``fail_times`` executions die).
``sleep``
    Seconds to sleep before acting — makes a cell slow enough to outlive a
    short lease.  With ``fail_times`` set, only the first ``fail_times``
    executions sleep ("hangs, then recovers when re-run").
``fail_times``
    How many executions misbehave before the cell turns healthy.
``scratch``
    Directory for cross-process attempt counters (required by ``flaky``
    and by any ``fail_times`` gating).  Attempts are keyed per ``cell``.
``cell``
    Label that (a) keys the attempt counter and (b) makes otherwise
    identical specs hash differently, so tests mint distinct grid cells.

Everything else lands on the tiny synthetic dataset, which keeps crashy
cells cheap enough (sub-second) for the tier-1 suite.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.data import SyntheticCIFAR10
from repro.experiment import ExperimentSpec, OptimizerConfig, TrainConfig, expand_sweep
from repro.experiment.datasets import DATASETS

__all__ = [
    "CrashyError",
    "crashy_dataset",
    "crashy_spec",
    "crashy_grid",
    "crashy_cells",
    "corrupt_done_marker",
    "write_hosts_file",
    "tiny_train",
]


class CrashyError(RuntimeError):
    """The injected failure — tests assert on this exact type/name."""


def _bump_attempt(scratch, cell: str) -> int:
    """Count executions of one cell across processes; returns the 1-based
    ordinal of this execution.  Append-to-file is atomic enough at this
    scale (single byte, O_APPEND) and keeps the counter monkeypatch-free."""
    path = Path(scratch) / f"{cell or 'cell'}.attempts"
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as f:
        f.write(".")
    return path.stat().st_size


def crashy_dataset(
    behavior: str = "ok",
    sleep: float = 0.0,
    fail_times: int = 0,
    scratch=None,
    cell: str = "",
    exit_code: int = 17,
    **kwargs,
):
    """Tiny synthetic dataset that misbehaves on demand (see module docstring).

    Construction happens inside ``PruningExperiment.__init__`` — i.e. in
    whichever process is executing the cell — so a fault injected here is a
    fault *in the worker*, exactly like a real broken cell.
    """
    attempt = _bump_attempt(scratch, cell) if scratch else None
    if fail_times and attempt is None:
        raise ValueError("fail_times gating needs scratch= to count attempts")
    misbehaving = attempt <= fail_times if fail_times else True
    if sleep and misbehaving:
        time.sleep(sleep)
    if behavior == "raise":
        raise CrashyError(f"injected failure in cell {cell!r}")
    if behavior == "flaky":
        if not fail_times:
            raise ValueError("flaky needs fail_times >= 1")
        if misbehaving:
            raise CrashyError(
                f"injected flaky failure {attempt}/{fail_times} in cell {cell!r}"
            )
    if behavior == "exit" and misbehaving:
        os._exit(exit_code)  # hard crash: no cleanup, lease left dangling
    kwargs.setdefault("n_train", 32)
    kwargs.setdefault("n_val", 16)
    kwargs.setdefault("size", 4)
    kwargs.setdefault("noise", 0.5)
    return SyntheticCIFAR10(**kwargs)


# idempotent: pytest, forked pool workers, and `worker --import exp_fixtures`
# subprocesses may all import this module into an interpreter where the
# registration already happened
if "crashy" not in DATASETS:
    DATASETS.register("crashy", crashy_dataset)


def tiny_train(epochs: int = 1) -> TrainConfig:
    return TrainConfig(
        epochs=epochs,
        batch_size=16,
        optimizer=OptimizerConfig("adam", 2e-3),
        early_stop_patience=None,
    )


def crashy_spec(
    cell: str = "c0",
    behavior: str = "ok",
    compression: float = 2.0,
    seed: int = 0,
    **behavior_kwargs,
) -> ExperimentSpec:
    """One self-contained crashy cell (sub-second on a laptop CPU)."""
    return ExperimentSpec(
        model="lenet-300-100",
        dataset="crashy",
        strategy="global_weight",
        compression=compression,
        seed=seed,
        model_kwargs=dict(input_size=4, in_channels=3),
        dataset_kwargs=dict(cell=cell, behavior=behavior, **behavior_kwargs),
        pretrain=tiny_train(),
        finetune=tiny_train(),
    )


def crashy_grid(
    strategies=("global_weight", "random"),
    compressions=(1, 2),
    seeds=(0,),
    cell: str = "grid",
    behavior: str = "ok",
    **behavior_kwargs,
):
    """A real expanded grid (baselines deduped) over one crashy dataset."""
    return expand_sweep(
        model="lenet-300-100",
        dataset="crashy",
        strategies=list(strategies),
        compressions=list(compressions),
        seeds=list(seeds),
        model_kwargs=dict(input_size=4, in_channels=3),
        dataset_kwargs=dict(cell=cell, behavior=behavior, **behavior_kwargs),
        pretrain=tiny_train(),
        finetune=tiny_train(),
    )


# -- fleet-layer helpers ----------------------------------------------------

def crashy_cells(n: int, cell: str = "fleet", **behavior_kwargs):
    """``n`` distinct healthy crashy cells (the ``cell`` label salts the
    hash), for fleet tests that need a precise cell count rather than a
    grid shape."""
    return [
        crashy_spec(cell=f"{cell}{i}", **behavior_kwargs) for i in range(n)
    ]


def corrupt_done_marker(queue_dir, h: str, mode: str = "garbage") -> Path:
    """Corrupt one ``done/`` marker in place, simulating a torn write or
    bit rot.  ``mode="garbage"`` makes it unparseable; ``mode="swap"``
    keeps it valid JSON but for a *different* cell (hash mismatch)."""
    path = Path(queue_dir) / "done" / f"{h}.json"
    if mode == "garbage":
        path.write_text("{ not json", encoding="utf-8")
    elif mode == "swap":
        import json

        from repro.experiment.cache import spec_hash

        other = crashy_spec(cell="an-impostor-cell")
        path.write_text(json.dumps({
            "schema": 1,
            "hash": spec_hash(other),
            "spec": other.to_dict(),
            "attempts": 1,
            "failures": [],
        }))
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return path


def write_hosts_file(path, lines=("local workers=2",)) -> Path:
    """A hosts file for ``repro fleet launch`` tests."""
    path = Path(path)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path
