"""Unit tests for the pruning core: discovery, scores, mask construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models import create_model
from repro.nn import BatchNorm2d, Conv2d, Linear, Module, Sequential
from repro.pruning import (
    GlobalMagGrad,
    GlobalMagWeight,
    LayerMagGrad,
    LayerMagWeight,
    LayerRandomPruning,
    PruningContext,
    RandomPruning,
    create_strategy,
    find_classifier,
    magnitude_scores,
    masks_from_scores_global,
    masks_from_scores_layerwise,
    prunable_parameters,
    random_scores,
)


class TestPrunableDiscovery:
    def test_excludes_bias_and_bn(self, tiny_resnet):
        names = [n for n, _ in prunable_parameters(tiny_resnet)]
        assert all(n.endswith(".weight") for n in names)
        assert not any("bn" in n for n in names)

    def test_excludes_classifier_by_default(self, tiny_resnet):
        names = [n for n, _ in prunable_parameters(tiny_resnet)]
        assert "fc.weight" not in names

    def test_classifier_included_on_request(self, tiny_resnet):
        names = [n for n, _ in prunable_parameters(tiny_resnet, prune_classifier=True)]
        assert "fc.weight" in names

    def test_find_classifier_property(self, tiny_resnet):
        assert find_classifier(tiny_resnet) is tiny_resnet.fc

    def test_find_classifier_fallback_last_linear(self):
        m = Sequential(Linear(4, 8), Linear(8, 2))
        assert find_classifier(m) is m[1]

    def test_no_prunable_raises(self):
        m = Sequential(BatchNorm2d(3))
        with pytest.raises(ValueError):
            GlobalMagWeight().compute_masks(m, 0.5)


class TestMaskConstruction:
    def _scores(self, sizes, rng):
        return {f"p{i}": rng.random(s) for i, s in enumerate(sizes)}

    def test_global_exact_count(self, rng):
        scores = self._scores([(10, 10), (30,), (5, 5, 2, 2)], rng)
        masks = masks_from_scores_global(scores, 0.3)
        total = sum(s.size for s in scores.values())
        kept = sum(m.sum() for m in masks.values())
        assert kept == round(total * 0.3)

    def test_global_keeps_highest(self, rng):
        scores = {"a": np.array([1.0, 5.0, 3.0, 4.0, 2.0])}
        masks = masks_from_scores_global(scores, 0.4)
        np.testing.assert_array_equal(masks["a"], [0, 1, 0, 1, 0])

    def test_global_handles_ties_exactly(self):
        scores = {"a": np.ones(10)}
        masks = masks_from_scores_global(scores, 0.5)
        assert masks["a"].sum() == 5

    def test_layerwise_exact_count_per_layer(self, rng):
        scores = self._scores([(20,), (40,)], rng)
        masks = masks_from_scores_layerwise(scores, 0.25)
        assert masks["p0"].sum() == 5
        assert masks["p1"].sum() == 10

    def test_layerwise_never_empties_layer(self, rng):
        scores = {"a": rng.random(7)}
        masks = masks_from_scores_layerwise(scores, 0.01)
        assert masks["a"].sum() >= 1

    def test_full_keep_is_all_ones(self, rng):
        scores = self._scores([(4, 4)], rng)
        for fn in (masks_from_scores_global, masks_from_scores_layerwise):
            masks = fn(scores, 1.0)
            np.testing.assert_array_equal(masks["p0"], np.ones((4, 4)))

    def test_zero_keep_raises_global(self, rng):
        with pytest.raises(ValueError):
            masks_from_scores_global({"a": rng.random(5)}, 0.0)

    @given(frac=st.floats(0.05, 1.0), n=st.integers(10, 300))
    @settings(max_examples=30, deadline=None)
    def test_global_count_property(self, frac, n):
        rng = np.random.default_rng(n)
        scores = {"a": rng.random(n), "b": rng.random((n // 2, 2))}
        masks = masks_from_scores_global(scores, frac)
        total = n + (n // 2) * 2
        kept = int(sum(m.sum() for m in masks.values()))
        assert kept == round(total * frac) or kept == max(1, round(total * frac))

    @given(frac=st.floats(0.05, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_masks_binary_property(self, frac):
        rng = np.random.default_rng(int(frac * 1e6))
        scores = {"a": rng.random((8, 8))}
        for fn in (masks_from_scores_global, masks_from_scores_layerwise):
            for m in fn(scores, frac).values():
                assert set(np.unique(m)) <= {0.0, 1.0}


class TestScoring:
    def test_magnitude_scores_are_abs(self, tiny_resnet):
        params = prunable_parameters(tiny_resnet)
        scores = magnitude_scores(params)
        name, p = params[0]
        np.testing.assert_allclose(scores[name], np.abs(p.data))

    def test_random_scores_deterministic(self, tiny_resnet):
        params = prunable_parameters(tiny_resnet)
        s1 = random_scores(params, np.random.default_rng(1))
        s2 = random_scores(params, np.random.default_rng(1))
        name = params[0][0]
        np.testing.assert_array_equal(s1[name], s2[name])


class TestStrategies:
    @pytest.fixture
    def context(self, tiny_cifar):
        from repro.data import DataLoader

        dl = DataLoader(tiny_cifar.train, batch_size=32, shuffle=True, seed=0,
                        transform=tiny_cifar.eval_transform())
        x, y = dl.one_batch()
        return PruningContext(inputs=x, targets=y, rng=np.random.default_rng(0))

    def _kept_fraction(self, masks):
        total = sum(m.size for m in masks.values())
        return sum(m.sum() for m in masks.values()) / total

    @pytest.mark.parametrize("name", ["global_weight", "layer_weight", "random", "layer_random"])
    def test_data_free_strategies_hit_fraction(self, name, tiny_resnet):
        strat = create_strategy(name)
        ctx = PruningContext(rng=np.random.default_rng(0))
        masks = strat.compute_masks(tiny_resnet, 0.25, ctx)
        assert self._kept_fraction(masks) == pytest.approx(0.25, abs=0.02)

    @pytest.mark.parametrize("name", ["global_gradient", "layer_gradient"])
    def test_gradient_strategies_hit_fraction(self, name, tiny_resnet, context):
        masks = create_strategy(name).compute_masks(tiny_resnet, 0.25, context)
        assert self._kept_fraction(masks) == pytest.approx(0.25, abs=0.02)

    def test_gradient_strategy_requires_data(self, tiny_resnet):
        with pytest.raises(ValueError):
            GlobalMagGrad().compute_masks(tiny_resnet, 0.5, PruningContext())
        with pytest.raises(ValueError):
            LayerMagGrad().compute_masks(tiny_resnet, 0.5, None)

    def test_global_magnitude_keeps_largest(self, tiny_resnet):
        masks = GlobalMagWeight().compute_masks(tiny_resnet, 0.5)
        params = dict(prunable_parameters(tiny_resnet))
        all_scores = np.concatenate([np.abs(p.data).ravel() for p in params.values()])
        thresh = np.quantile(all_scores, 0.5)
        for name, mask in masks.items():
            kept_scores = np.abs(params[name].data)[mask == 1]
            if kept_scores.size:
                assert kept_scores.min() >= thresh * 0.9

    def test_layerwise_uniform_fraction(self, tiny_resnet):
        masks = LayerMagWeight().compute_masks(tiny_resnet, 0.3)
        for name, mask in masks.items():
            assert mask.mean() == pytest.approx(0.3, abs=0.05)

    def test_global_concentrates_unlike_layerwise(self, tiny_vgg):
        g = GlobalMagWeight().compute_masks(tiny_vgg, 0.2)
        fractions = [m.mean() for m in g.values()]
        assert max(fractions) - min(fractions) > 0.2  # very uneven

    def test_random_seeds_differ(self, tiny_resnet):
        m1 = RandomPruning().compute_masks(tiny_resnet, 0.5, PruningContext(rng=np.random.default_rng(1)))
        m2 = RandomPruning().compute_masks(tiny_resnet, 0.5, PruningContext(rng=np.random.default_rng(2)))
        name = next(iter(m1))
        assert not np.array_equal(m1[name], m2[name])

    def test_gradient_differs_from_magnitude(self, tiny_resnet, context):
        mg = GlobalMagWeight().compute_masks(tiny_resnet, 0.3)
        gg = GlobalMagGrad().compute_masks(tiny_resnet, 0.3, context)
        diff = sum((mg[n] != gg[n]).sum() for n in mg)
        assert diff > 0

    def test_invalid_fraction_rejected(self, tiny_resnet):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                GlobalMagWeight().compute_masks(tiny_resnet, bad)

    def test_unknown_strategy_key(self):
        with pytest.raises(KeyError):
            create_strategy("definitely-not-a-strategy")

    def test_layer_random_uniform_proportions(self, tiny_resnet):
        masks = LayerRandomPruning().compute_masks(
            tiny_resnet, 0.4, PruningContext(rng=np.random.default_rng(0))
        )
        for m in masks.values():
            assert m.mean() == pytest.approx(0.4, abs=0.05)


class TestStructured:
    def test_filter_masks_are_filter_aligned(self, tiny_resnet):
        from repro.pruning import LayerFilterL1

        masks = LayerFilterL1().compute_masks(tiny_resnet, 0.5)
        for name, mask in masks.items():
            if mask.ndim == 4:
                per_filter = mask.reshape(mask.shape[0], -1)
                # each filter slab is all-kept or all-dropped
                assert np.all((per_filter.min(axis=1) == per_filter.max(axis=1)))

    def test_structured_gives_higher_speedup_at_same_params(self, tiny_vgg):
        from repro.metrics import theoretical_speedup
        from repro.pruning import GlobalFilterL1, GlobalMagWeight, Pruner

        import copy

        m_unstruct = create_model("cifar-vgg", width_scale=0.125, input_size=8, seed=0)
        m_struct = create_model("cifar-vgg", width_scale=0.125, input_size=8, seed=0)
        Pruner(m_unstruct, GlobalMagWeight()).prune(4)
        Pruner(m_struct, GlobalFilterL1()).prune(4)
        su = theoretical_speedup(m_unstruct, (3, 8, 8))
        ss = theoretical_speedup(m_struct, (3, 8, 8))
        # same parameter budget; structured removes whole filters and their
        # spatial work, so its speedup is at least comparable
        assert ss > 1.0 and su > 1.0
