"""Tests for the shared component Registry and its six instances."""

import pytest

from repro.registry import Registry


class TestRegistryBasics:
    def test_register_direct_and_create(self):
        reg = Registry("widget")
        reg.register("a", lambda x=1: x * 2)
        assert reg.get("a")(3) == 6
        assert reg.create("a", x=5) == 10

    def test_register_as_decorator_with_name(self):
        reg = Registry("widget")

        @reg.register("my-widget")
        def factory():
            return 42

        assert reg.create("my-widget") == 42
        assert factory() == 42  # decorator returns the component unchanged

    def test_register_bare_decorator_uses_name_attribute(self):
        reg = Registry("widget")

        @reg.register
        class Thing:
            name = "thing-v1"

        assert reg.get("thing-v1") is Thing

    def test_register_bare_decorator_falls_back_to_dunder_name(self):
        reg = Registry("widget")

        @reg.register
        def some_factory():
            return 1

        assert reg.get("some_factory") is some_factory

    def test_available_sorted(self):
        reg = Registry("widget", {"b": 1, "a": 2, "c": 3})
        assert reg.available() == ["a", "b", "c"]

    def test_invalid_key_rejected(self):
        reg = Registry("widget")
        with pytest.raises(TypeError):
            reg.register("", object())
        with pytest.raises(TypeError):
            reg.register(123, object())


class TestOverrideProtection:
    def test_duplicate_rejected(self):
        reg = Registry("widget")
        reg.register("a", 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", 2)
        assert reg.get("a") == 1

    def test_override_flag_replaces(self):
        reg = Registry("widget")
        reg.register("a", 1)
        reg.register("a", 2, override=True)
        assert reg.get("a") == 2

    def test_unregister(self):
        reg = Registry("widget", {"a": 1})
        assert reg.unregister("a") == 1
        assert "a" not in reg
        with pytest.raises(KeyError):
            reg.unregister("a")


class TestUnknownNameErrors:
    def test_keyerror_lists_available(self):
        reg = Registry("widget", {"alpha": 1, "beta": 2})
        with pytest.raises(KeyError) as err:
            reg.get("gamma")
        assert "unknown widget 'gamma'" in str(err.value)
        assert "alpha" in str(err.value) and "beta" in str(err.value)

    def test_close_match_suggested(self):
        reg = Registry("widget", {"global_weight": 1, "layer_weight": 2})
        with pytest.raises(KeyError, match="did you mean"):
            reg.get("globel_weight")
        with pytest.raises(KeyError, match="global_weight"):
            reg.get("global_wieght")


class TestMappingProtocol:
    """The old dict registries are now Registry aliases; dict idioms hold."""

    def test_getitem_contains_len_iter(self):
        reg = Registry("widget", {"a": 1, "b": 2})
        assert reg["a"] == 1
        assert "a" in reg and "z" not in reg
        assert len(reg) == 2
        assert sorted(reg) == ["a", "b"]
        assert sorted(reg.keys()) == ["a", "b"]
        assert sorted(reg.values()) == [1, 2]
        assert dict(reg.items()) == {"a": 1, "b": 2}

    def test_setitem_replaces_silently(self):
        reg = Registry("widget", {"a": 1})
        reg["a"] = 9
        assert reg["a"] == 9

    def test_setdefault(self):
        reg = Registry("widget", {"a": 1})
        assert reg.setdefault("a", 9) == 1
        assert reg.setdefault("b", 9) == 9
        assert reg["b"] == 9


class TestSharedInstances:
    """All component families go through the one Registry class."""

    def test_models(self):
        from repro.models import MODEL_REGISTRY, MODELS

        assert isinstance(MODELS, Registry)
        assert MODEL_REGISTRY is MODELS
        assert "resnet-20" in MODELS and "lenet-5" in MODELS

    def test_datasets(self):
        from repro.experiment import DATASET_REGISTRY, DATASETS

        assert isinstance(DATASETS, Registry)
        assert DATASET_REGISTRY is DATASETS
        assert {"cifar10", "imagenet", "mnist"} <= set(DATASETS)

    def test_strategies(self):
        from repro.pruning import STRATEGIES, STRATEGY_REGISTRY

        assert isinstance(STRATEGIES, Registry)
        assert STRATEGY_REGISTRY is STRATEGIES
        assert {"global_weight", "layer_weight", "global_gradient",
                "layer_gradient", "random", "layer_random",
                "global_filter_l1", "layer_filter_l1"} <= set(STRATEGIES)

    def test_schedules(self):
        from repro.pruning import SCHEDULES, schedule_targets

        assert isinstance(SCHEDULES, Registry)
        assert {"one_shot", "iterative", "polynomial"} <= set(SCHEDULES)
        assert schedule_targets("one_shot", 8.0, 5) == [8.0]
        targets = schedule_targets("iterative", 8.0, 4)
        assert len(targets) == 4 and targets[-1] == pytest.approx(8.0)
        with pytest.raises(ValueError):
            schedule_targets("one_shot", 8.0, 0)

    def test_optimizers(self):
        from repro.optim import OPTIMIZERS

        assert isinstance(OPTIMIZERS, Registry)
        assert {"adam", "sgd"} <= set(OPTIMIZERS)

    def test_executors(self):
        from repro.experiment import EXECUTORS, ParallelExecutor, SerialExecutor

        assert isinstance(EXECUTORS, Registry)
        assert EXECUTORS.get("serial") is SerialExecutor
        assert EXECUTORS.get("parallel") is ParallelExecutor

    def test_optimizer_config_validates_against_registry(self):
        from repro.experiment import OptimizerConfig

        with pytest.raises(ValueError, match="unknown optimizer"):
            OptimizerConfig(name="rmsprop")
