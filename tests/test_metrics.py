"""Unit tests for size, FLOPs and accuracy metrics."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data import ArrayDataset, DataLoader
from repro.metrics import (
    FlopsConvention,
    compression_ratio,
    compression_ratio_misused,
    dense_flops,
    effective_flops,
    evaluate,
    flops_by_layer,
    fraction_pruned,
    fraction_remaining,
    model_size_bytes,
    nonzero_params,
    per_layer_nonzero,
    theoretical_speedup,
    topk_accuracy,
    total_params,
    trace_layers,
)
from repro.models import create_model
from repro.nn import Conv2d, Flatten, Linear, Module, Sequential
from repro.pruning import GlobalMagWeight, LayerMagWeight, Pruner


class SmallConvNet(Module):
    """Known-by-hand FLOPs: conv 2->4 k3 p1 on 8x8, then linear 256->10."""

    def __init__(self):
        super().__init__()
        self.conv = Conv2d(2, 4, 3, padding=1, bias=True)
        self.flatten = Flatten()
        self.fc = Linear(4 * 8 * 8, 10)

    def forward(self, x):
        return self.fc(self.flatten(self.conv(x)))


class TestSizeMetrics:
    def test_total_and_nonzero(self):
        m = Linear(4, 2)
        assert total_params(m) == 10
        m.weight.data[:] = 0
        assert nonzero_params(m) == 0  # bias initialized to zero too

    def test_compression_ratio_definitions(self):
        assert compression_ratio(100, 25) == 4.0
        assert compression_ratio_misused(100, 25) == 0.75
        assert fraction_pruned(100, 25) == 0.75
        assert fraction_remaining(100, 25) == 0.25

    def test_compression_validation(self):
        with pytest.raises(ValueError):
            compression_ratio(100, 0)
        with pytest.raises(ValueError):
            compression_ratio(0, 10)

    def test_model_size_bytes(self):
        m = Linear(4, 2)
        assert model_size_bytes(m) == 10 * 4
        m.weight.data[:] = 0
        assert model_size_bytes(m, sparse=True) == 0

    def test_per_layer_nonzero(self):
        m = Sequential(Linear(3, 3), Linear(3, 2))
        table = per_layer_nonzero(m)
        assert table["0.weight"]["size"] == 9
        assert table["1.weight"]["size"] == 6


class TestFlops:
    def test_trace_records_conv_and_linear(self):
        traces = trace_layers(SmallConvNet(), (2, 8, 8))
        assert [t.name for t in traces] == ["conv", "fc"]
        assert traces[0].output_shape == (1, 4, 8, 8)

    def test_dense_flops_by_hand(self):
        m = SmallConvNet()
        # conv MACs = weights (4*2*3*3=72) * positions (64) = 4608
        # fc MACs   = 256*10 = 2560
        assert dense_flops(m, (2, 8, 8)) == 4608 + 2560

    def test_ops_per_mac_convention(self):
        m = SmallConvNet()
        one = dense_flops(m, (2, 8, 8), FlopsConvention(ops_per_mac=1))
        two = dense_flops(m, (2, 8, 8), FlopsConvention(ops_per_mac=2))
        assert two == 2 * one

    def test_conv_only_convention(self):
        m = SmallConvNet()
        conv_only = dense_flops(m, (2, 8, 8), FlopsConvention(include_linear=False))
        assert conv_only == 4608

    def test_bias_convention(self):
        m = SmallConvNet()
        with_bias = dense_flops(m, (2, 8, 8), FlopsConvention(include_bias=True))
        # bias adds: conv 4*64 outputs + fc 10 outputs
        assert with_bias == 4608 + 2560 + 4 * 64 + 10

    def test_convention_validation(self):
        with pytest.raises(ValueError):
            FlopsConvention(ops_per_mac=3)

    def test_effective_counts_nonzero_only(self):
        m = SmallConvNet()
        m.conv.weight.data[0] = 0.0  # remove one filter: 18 weights
        eff = effective_flops(m, (2, 8, 8))
        assert eff == (72 - 18) * 64 + 2560

    def test_speedup_after_pruning(self):
        m = SmallConvNet()
        m.conv.weight.data.reshape(-1)[::2] = 0.0
        m.fc.weight.data.reshape(-1)[::2] = 0.0
        sp = theoretical_speedup(m, (2, 8, 8))
        assert sp == pytest.approx(2.0, rel=0.01)

    def test_stride_affects_flops(self):
        a = Sequential(Conv2d(3, 4, 3, stride=1, padding=1))
        b = Sequential(Conv2d(3, 4, 3, stride=2, padding=1))
        fa = dense_flops(a, (3, 8, 8))
        fb = dense_flops(b, (3, 8, 8))
        assert fa == 4 * fb  # stride 2 quarters the output positions

    def test_global_pruning_gives_lower_speedup_than_layerwise(self):
        """The Figure 6 mechanism: at equal compression, global pruning
        removes cheap FC/late weights, yielding a smaller FLOPs reduction."""
        mg = create_model("cifar-vgg", width_scale=0.25, input_size=16, seed=0)
        ml = create_model("cifar-vgg", width_scale=0.25, input_size=16, seed=0)
        Pruner(mg, GlobalMagWeight()).prune(8)
        Pruner(ml, LayerMagWeight()).prune(8)
        assert theoretical_speedup(mg, (3, 16, 16)) < theoretical_speedup(ml, (3, 16, 16))

    def test_flops_by_layer_keys(self):
        table = flops_by_layer(SmallConvNet(), (2, 8, 8))
        assert set(table) == {"conv", "fc"}

    def test_zero_effective_flops_raises(self):
        m = SmallConvNet()
        m.conv.weight.data[:] = 0
        m.fc.weight.data[:] = 0
        with pytest.raises(ValueError):
            theoretical_speedup(m, (2, 8, 8))


class TestAccuracy:
    def test_topk_by_hand(self):
        logits = np.array([[0.1, 0.9, 0.0], [0.8, 0.15, 0.1]])
        targets = np.array([1, 2])
        assert topk_accuracy(logits, targets, 1) == 0.5
        assert topk_accuracy(logits, targets, 2) == 0.5
        assert topk_accuracy(logits, targets, 3) == 1.0

    def test_topk_k_at_least_one(self):
        with pytest.raises(ValueError):
            topk_accuracy(np.zeros((2, 3)), np.zeros(2, dtype=int), 0)

    def test_topk_k_geq_classes_is_one(self):
        assert topk_accuracy(np.zeros((4, 3)), np.zeros(4, dtype=int), 5) == 1.0

    def test_evaluate_perfect_model(self):
        class Oracle(Module):
            def forward(self, x):
                n = x.shape[0]
                flat = x.flatten()
                return flat[:, :10] * 0 + Tensor(np.eye(10)[self.answers])

        x = np.random.default_rng(0).normal(size=(20, 1, 4, 4)).astype(np.float32)
        y = np.arange(20) % 10
        oracle = Oracle()
        oracle.answers = y
        loader = DataLoader(ArrayDataset(x, y), batch_size=20)
        out = evaluate(oracle, loader)
        assert out["top1"] == 1.0
        assert out["top5"] == 1.0

    def test_evaluate_restores_training_mode(self, tiny_resnet, tiny_cifar):
        loader = DataLoader(tiny_cifar.val, batch_size=48)
        tiny_resnet.train()
        evaluate(tiny_resnet, loader)
        assert tiny_resnet.training

    def test_evaluate_reports_loss(self, tiny_resnet, tiny_cifar):
        loader = DataLoader(tiny_cifar.val, batch_size=48)
        out = evaluate(tiny_resnet, loader)
        assert out["loss"] > 0
        assert 0 <= out["top1"] <= 1
