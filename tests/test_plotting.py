"""Tests for tradeoff curves, ASCII rendering, CSV export."""

import csv

import numpy as np
import pytest

from repro.experiment import PruningResult
from repro.plotting import (
    TradeoffCurve,
    curves_from_results,
    export_curves_csv,
    render_curves,
    render_histogram,
)


def make_results():
    out = []
    for strat, base in (("global_weight", 0.9), ("random", 0.7)):
        for seed in (0, 1):
            for c in (1, 2, 4, 8):
                out.append(PruningResult(
                    model="m", dataset="d", strategy=strat,
                    compression=float(c), seed=seed,
                    top1=base - 0.02 * c + 0.01 * seed,
                    theoretical_speedup=float(c) ** 0.8,
                ))
    return out


class TestTradeoffCurve:
    def test_sorted_on_construction(self):
        c = TradeoffCurve("x", xs=[4, 1, 2], ys=[3, 1, 2])
        assert c.xs == [1, 2, 4]
        assert c.ys == [1, 2, 3]

    def test_length_validation(self):
        with pytest.raises(ValueError):
            TradeoffCurve("x", xs=[1, 2], ys=[1])
        with pytest.raises(ValueError):
            TradeoffCurve("x", xs=[1], ys=[1], stds=[1, 2])

    def test_y_at(self):
        c = TradeoffCurve("x", xs=[1, 2], ys=[5, 6])
        assert c.y_at(2) == 6
        assert c.y_at(3) is None

    def test_from_results_grouping(self):
        curves = curves_from_results(make_results())
        assert [c.label for c in curves] == ["global_weight", "random"]
        assert len(curves[0]) == 4

    def test_from_results_custom_labels_and_axes(self):
        curves = curves_from_results(
            make_results(),
            x_attr="theoretical_speedup",
            labels={"global_weight": "Global Weight", "random": "Random"},
        )
        assert curves[0].label == "Global Weight"

    def test_mean_over_seeds(self):
        curves = curves_from_results(make_results())
        gw = curves[0]
        # two seeds at 0.9-0.02c and +0.01: mean offset 0.005
        assert gw.y_at(1.0) == pytest.approx(0.9 - 0.02 + 0.005)
        assert all(s > 0 for s in gw.stds)


class TestAsciiRendering:
    def test_render_contains_labels_and_axes(self):
        curves = curves_from_results(make_results())
        out = render_curves(curves, title="Accuracy vs Compression")
        assert "Accuracy vs Compression" in out
        assert "global_weight" in out and "random" in out
        assert "|" in out

    def test_render_empty(self):
        assert render_curves([]) == "(no data)"

    def test_render_linear_axis(self):
        curves = [TradeoffCurve("a", xs=[1, 2, 3], ys=[1, 2, 3])]
        out = render_curves(curves, log_x=False)
        assert "a" in out

    def test_histogram_renders_counts(self):
        out = render_histogram(["0", "1", "2"], [5, 3, 1], title="T")
        assert "T" in out
        assert out.count("#") > 0
        assert "5" in out

    def test_histogram_validates(self):
        with pytest.raises(ValueError):
            render_histogram(["a"], [1, 2])

    def test_histogram_all_zero(self):
        out = render_histogram(["a", "b"], [0, 0])
        assert "a" in out


class TestCsvExport:
    def test_export_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        curves = curves_from_results(make_results())
        path = export_curves_csv(curves, "unit_test_fig")
        rows = list(csv.reader(open(path)))
        assert rows[0] == ["series", "x", "y", "std", "n"]
        assert len(rows) == 1 + sum(len(c) for c in curves)
        series = {r[0] for r in rows[1:]}
        assert series == {"global_weight", "random"}
        # §6: the seed count rides along with mean and std
        assert all(int(r[4]) == 2 for r in rows[1:])
