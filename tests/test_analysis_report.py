"""End-to-end: frame constructors agree across sweep artifacts, the report
CLI emits the §6 bundle, and the queue maintenance subcommands work.

A real (tiny) sweep runs once per module through the serial executor (with
a dedicated result cache) and once through the queue executor (with its
own queue directory), then the same curves must come out of the saved
``results.json``, the cache directory, and the queue directory — the
acceptance bar for ``python -m repro report``.
"""

import csv
import json

import pytest

from repro.analysis import (
    ResultFrame,
    build_report,
    load_frame,
    render_report,
    report_csv_rows,
)
from repro.cli import main
from repro.experiment import (
    ExperimentSpec,
    OptimizerConfig,
    ResultCache,
    SweepConfig,
    TrainConfig,
    WorkQueue,
    run_config,
)


def _mini_config(**overrides):
    kw = dict(
        model="lenet-300-100",
        dataset="cifar10",
        strategies=("global_weight", "random"),
        compressions=(1, 2),
        seeds=(0, 1),
        model_kwargs=dict(input_size=8, in_channels=3),
        dataset_kwargs=dict(n_train=128, n_val=64, size=8, noise=0.5),
        pretrain=TrainConfig(epochs=1, batch_size=32,
                             optimizer=OptimizerConfig("adam", 2e-3),
                             early_stop_patience=None),
        finetune=TrainConfig(epochs=1, batch_size=32,
                             optimizer=OptimizerConfig("adam", 3e-4),
                             early_stop_patience=None),
    )
    kw.update(overrides)
    return SweepConfig(**kw)


@pytest.fixture(scope="module")
def sweep_artifacts(tmp_path_factory):
    """One real mini sweep in all three artifact forms."""
    root = tmp_path_factory.mktemp("report_sweep")
    cache_dir = root / "cache"
    results_path = root / "results.json"
    queue_dir = root / "queue"

    results = run_config(_mini_config(), cache=ResultCache(cache_dir))
    results.save(results_path)

    queue_results = run_config(
        _mini_config(
            executor="queue",
            executor_options={"queue_dir": str(queue_dir)},
        )
    )
    assert len(queue_results) == len(results)
    return {"results": results_path, "cache": cache_dir, "queue": queue_dir}


def _curve_data(frame):
    return report_csv_rows(build_report(frame))


class TestFrameSourcesAgree:
    def test_json_cache_queue_identical_curves(self, sweep_artifacts):
        """The acceptance criterion: point-for-point identical curve data
        from results.json, the ResultCache directory, and the queue dir."""
        from_json = _curve_data(ResultFrame.from_json(sweep_artifacts["results"]))
        from_cache = _curve_data(ResultFrame.from_cache(sweep_artifacts["cache"]))
        from_queue = _curve_data(ResultFrame.from_queue(sweep_artifacts["queue"]))
        assert from_json == from_cache == from_queue
        # both §6 axes are present, for every strategy, with seed counts
        assert {row[1] for row in from_json[1:]} == {
            "compression", "theoretical_speedup"
        }
        assert {row[0] for row in from_json[1:]} == {"global_weight", "random"}
        assert all(row[5] == 2 for row in from_json[1:])  # 2 seeds per point

    def test_load_frame_sniffs_all_three(self, sweep_artifacts):
        for source in sweep_artifacts.values():
            frame = load_frame(source)
            assert len(frame) > 0

    def test_from_queue_honors_cache_dir_override(self, sweep_artifacts):
        # a queue run with an explicit --cache-dir stores rows elsewhere;
        # from_queue/--cache-dir must read that store, not <queue>/cache
        override = ResultFrame.from_queue(
            sweep_artifacts["queue"], cache_dir=sweep_artifacts["cache"]
        )
        assert _curve_data(override) == _curve_data(
            ResultFrame.from_cache(sweep_artifacts["cache"])
        )

    def test_report_cache_dir_flag(self, sweep_artifacts, tmp_path, capsys):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        assert main(["report", str(sweep_artifacts["queue"]),
                     "--cache-dir", str(sweep_artifacts["cache"]),
                     "--csv", str(a)]) == 0
        assert main(["report", str(sweep_artifacts["queue"]),
                     "--csv", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()  # same sweep either way
        # the flag is queue-only: rejected for plain results.json sources
        assert main(["report", str(sweep_artifacts["results"]),
                     "--cache-dir", str(sweep_artifacts["cache"])]) == 2
        capsys.readouterr()

    def test_replication_matches_assembled_results(self, sweep_artifacts):
        """from_cache holds one sentinel baseline per seed; replication must
        rebuild exactly the assembled per-strategy baseline matrix."""
        assembled = ResultFrame.from_json(sweep_artifacts["results"])
        replicated = ResultFrame.from_cache(
            sweep_artifacts["cache"]
        ).replicate_baselines()
        key = lambda rec: (rec["strategy"], rec["compression"], rec["seed"])
        assert sorted(
            (key(r), r["top1"]) for r in replicated.to_records()
        ) == sorted((key(r), r["top1"]) for r in assembled.to_records())


class TestReportCli:
    def test_report_from_json_with_csv(self, sweep_artifacts, tmp_path, capsys):
        csv_path = tmp_path / "curves.csv"
        rc = main(["report", str(sweep_artifacts["results"]),
                   "--csv", str(csv_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "standard report" in out
        assert "global_weight" in out and "random" in out
        assert "Pareto-dominant" in out
        assert "checklist audit" in out
        # the CSV parses: header + float-parseable cells
        table = list(csv.reader(open(csv_path)))
        assert table[0] == ["strategy", "x_metric", "x",
                            "top1_mean", "top1_std", "n"]
        assert len(table) > 1
        for row in table[1:]:
            float(row[2]), float(row[3]), float(row[4]), int(row[5])

    def test_report_json_emitter(self, sweep_artifacts, tmp_path, capsys):
        json_path = tmp_path / "report.json"
        rc = main(["report", str(sweep_artifacts["results"]),
                   "--json", str(json_path)])
        assert rc == 0
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == 1
        assert payload["n_failed"] == 0
        assert set(payload["curves"]) == {"compression", "theoretical_speedup"}
        assert set(payload["strategies"]) == {"global_weight", "random"}
        for strategy, points in payload["curves"]["compression"].items():
            assert strategy in payload["strategies"]
            for point in points:
                assert {"x", "mean", "std", "n"} == set(point)
        assert payload["summary"] and payload["checklist"]
        assert all({"item", "passed", "detail"} == set(c)
                   for c in payload["checklist"])
        # the curve points match the CSV emitter's numbers
        csv_path = tmp_path / "curves.csv"
        main(["report", str(sweep_artifacts["results"]), "--csv", str(csv_path)])
        csv_points = {
            (r[0], r[1], float(r[2])): (float(r[3]), float(r[4]), int(r[5]))
            for r in list(csv.reader(open(csv_path)))[1:]
        }
        for x_metric, by_strategy in payload["curves"].items():
            for strategy, points in by_strategy.items():
                for p in points:
                    mean, std, n = csv_points[(strategy, x_metric, p["x"])]
                    assert (p["mean"], p["std"], p["n"]) == (mean, std, n)

    def test_report_json_stdout(self, sweep_artifacts, tmp_path, capsys):
        rc = main(["report", str(sweep_artifacts["results"]), "--json", "-"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1 and payload["curves"]
        # --csv alongside --json -: the notice must not corrupt stdout
        rc = main(["report", str(sweep_artifacts["results"]), "--json", "-",
                   "--csv", str(tmp_path / "c.csv")])
        assert rc == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["schema"] == 1
        assert "curve data ->" in captured.err

    def test_report_identical_across_sources(self, sweep_artifacts, tmp_path, capsys):
        outputs = {}
        for name, source in sweep_artifacts.items():
            path = tmp_path / f"{name}.csv"
            assert main(["report", str(source), "--csv", str(path)]) == 0
            outputs[name] = path.read_bytes()
        capsys.readouterr()
        assert outputs["results"] == outputs["cache"] == outputs["queue"]

    def test_report_summary_table_parses(self, sweep_artifacts, capsys):
        main(["report", str(sweep_artifacts["results"])])
        out = capsys.readouterr().out
        table = out.split("-- summary")[1].splitlines()
        header = table[1]
        assert "c=1" in header and "c=2" in header
        body = [l for l in table[2:4]]
        assert any(l.startswith("global_weight") for l in body)
        # every cell is mean±std(n)
        assert all("±" in l and "(2)" in l for l in body)

    def test_report_missing_source(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.json")]) == 2
        assert main(["report", str(tmp_path)]) == 2  # dir with no entries
        capsys.readouterr()


def _dummy_spec(tag="a"):
    return ExperimentSpec(
        model=f"missing-{tag}", dataset="missing", strategy="global_weight",
        compression=2.0, seed=0,
    )


class TestQueueMaintenance:
    @pytest.fixture
    def quarantined_queue(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_timeout=30.0, max_retries=1)
        h = queue.submit(_dummy_spec())
        for _ in range(2):  # 1 initial run + 1 retry -> quarantine
            claim = queue.claim("w0")
            assert claim is not None
            assert queue.fail(claim, "Traceback ...\nBoomError: nope") in (
                "pending", "failed"
            )
        assert queue.state(h) == "failed"
        return queue

    def test_stats_reports_quarantine(self, quarantined_queue, capsys):
        assert main(["queue", "stats", str(quarantined_queue.root)]) == 0
        out = capsys.readouterr().out
        assert "failed        : 1" in out
        assert "BoomError: nope" in out
        assert "attempts=2" in out

    def test_stats_shows_live_leases(self, tmp_path, capsys):
        queue = WorkQueue(tmp_path / "q")
        queue.submit(_dummy_spec())
        queue.claim("worker-9")
        assert main(["queue", "stats", str(queue.root)]) == 0
        out = capsys.readouterr().out
        assert "worker=worker-9" in out

    def test_retry_failed_resets_budget(self, quarantined_queue, capsys):
        assert main(["queue", "retry-failed", str(quarantined_queue.root)]) == 0
        out = capsys.readouterr().out
        assert "re-enqueued 1" in out
        assert quarantined_queue.counts()["pending"] == 1
        assert quarantined_queue.counts()["failed"] == 0
        # the failure history survives for the audit trail, budget is fresh
        h = quarantined_queue.submit(_dummy_spec())
        payload = quarantined_queue.payload(h)
        assert payload["attempts"] == 0
        assert len(payload["failures"]) == 2

    def test_compact_gcs_done_markers(self, tmp_path, capsys):
        queue = WorkQueue(tmp_path / "q")
        for tag in ("a", "b"):
            h = queue.submit(_dummy_spec(tag))
            claim = queue.claim("w0")
            queue.complete(claim)
        assert queue.counts()["done"] == 2
        assert main(["queue", "compact", str(queue.root)]) == 0
        assert "removed 2 done marker(s)" in capsys.readouterr().out
        assert queue.counts()["done"] == 0

    def test_compact_respects_max_age(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        h = queue.submit(_dummy_spec())
        queue.complete(queue.claim("w0"))
        assert queue.compact(max_age=3600.0) == 0  # too fresh
        assert queue.compact() == 1

    def test_queue_cli_missing_dir(self, tmp_path, capsys):
        assert main(["queue", "stats", str(tmp_path / "absent")]) == 2
        capsys.readouterr()

    def test_queue_cli_refuses_non_queue_dir(self, tmp_path, capsys):
        # maintenance must not scaffold a queue layout into e.g. a cache dir
        plain = tmp_path / "cache_root"
        plain.mkdir()
        assert main(["queue", "stats", str(plain)]) == 2
        capsys.readouterr()
        assert list(plain.iterdir()) == []  # untouched

    def test_report_warns_on_in_progress_queue(self, tmp_path, capsys):
        from repro.experiment import PruningResult
        from repro.experiment.cache import ResultCache

        queue = WorkQueue(tmp_path / "q")
        queue.submit(_dummy_spec("a"))  # still pending: sweep not finished
        queue.submit(_dummy_spec("b"))
        queue.complete(queue.claim("w0"))
        # give the queue's cache one real row so the report is non-empty
        ResultCache(queue.root / "cache").put(
            _dummy_spec("b"),
            PruningResult(model="m", dataset="d", strategy="s",
                          compression=2.0, seed=0, top1=0.5,
                          baseline_top1=0.6, dense_flops=1.0,
                          actual_compression=2.0, theoretical_speedup=1.5),
        )
        rc = main(["report", str(queue.root)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "still pending/leased" in captured.err
        assert "this report is partial" in captured.err
        # partial accounting is in the JSON document too, not only stderr
        rc = main(["report", str(queue.root), "--json", "-"])
        captured = capsys.readouterr()
        assert rc == 1
        payload = json.loads(captured.out)
        assert payload["outstanding"] == {"pending": 1, "leased": 0}

    def test_outstanding_in_report_document(self):
        from repro.analysis import queue_outstanding, report_to_json
        from repro.experiment import PruningResult

        frame = ResultFrame.from_results([PruningResult(
            model="m", dataset="d", strategy="s", compression=2.0, seed=0,
            top1=0.5, baseline_top1=0.6, dense_flops=1.0,
            actual_compression=2.0, theoretical_speedup=1.5,
        )])
        report = build_report(frame, outstanding={"pending": 3, "leased": 1})
        assert report.n_outstanding == 4
        assert report_to_json(report)["outstanding"] == \
            {"pending": 3, "leased": 1}
        assert "PARTIAL: 3 pending + 1 leased" in render_report(report)
        # finished sweeps carry explicit zeros and render no PARTIAL line
        finished = build_report(frame)
        assert finished.n_outstanding == 0
        assert "PARTIAL" not in render_report(finished)
        # the shared helper returns zeros for non-queue sources
        assert queue_outstanding("/definitely/not/a/queue") == \
            {"pending": 0, "leased": 0}

    def test_from_queue_surfaces_quarantine(self, quarantined_queue):
        frame = ResultFrame.from_queue(quarantined_queue.root)
        assert len(frame) == 1
        assert frame.failed_mask().all()
        report = build_report(frame)
        assert report.n_failed == 1
        assert report.curves["compression"] == {}
        rendered = render_report(report)
        assert "quarantined: 1" in rendered
        # a report over only-quarantined rows exits nonzero via the CLI
        assert main(["report", str(quarantined_queue.root)]) == 1
