"""Deeper semantic tests of pruning strategies and the experiment contract."""

import numpy as np
import pytest

from repro.data import DataLoader, SyntheticCIFAR10
from repro.models import create_model
from repro.pruning import (
    PAPER_LABELS,
    STRATEGY_REGISTRY,
    GlobalMagGrad,
    GlobalMagWeight,
    LayerMagWeight,
    Pruner,
    PruningContext,
    prunable_parameters,
)


class TestRegistryConsistency:
    def test_every_strategy_has_a_label(self):
        for key in STRATEGY_REGISTRY:
            assert key in PAPER_LABELS, f"missing display label for {key}"

    def test_names_match_keys(self):
        for key, cls in STRATEGY_REGISTRY.items():
            assert cls.name == key

    def test_paper_baselines_all_registered(self):
        # §7.2 lists exactly these five baselines
        for key in ("global_weight", "layer_weight", "global_gradient",
                    "layer_gradient", "random"):
            assert key in STRATEGY_REGISTRY


class TestAllocationSemantics:
    def test_global_prunes_layers_unevenly(self, tiny_vgg):
        masks = GlobalMagWeight().compute_masks(tiny_vgg, 0.3)
        fractions = sorted(m.mean() for m in masks.values())
        # early layers keep far more than late wide layers
        assert fractions[-1] - fractions[0] > 0.3

    def test_layerwise_is_uniform_by_construction(self, tiny_vgg):
        masks = LayerMagWeight().compute_masks(tiny_vgg, 0.3)
        fractions = [m.mean() for m in masks.values()]
        assert max(fractions) - min(fractions) < 0.05

    def test_global_and_layer_keep_same_total(self, tiny_vgg):
        g = GlobalMagWeight().compute_masks(tiny_vgg, 0.3)
        l = LayerMagWeight().compute_masks(tiny_vgg, 0.3)
        kept_g = sum(m.sum() for m in g.values())
        kept_l = sum(m.sum() for m in l.values())
        total = sum(m.size for m in g.values())
        assert abs(kept_g - kept_l) < 0.02 * total


class TestGradientScoringContract:
    def test_scoring_does_not_perturb_bn_stats(self, tiny_resnet, tiny_cifar):
        loader = DataLoader(tiny_cifar.train, batch_size=32, shuffle=True, seed=0)
        xb, yb = loader.one_batch()
        before = tiny_resnet.bn.running_mean.copy()
        GlobalMagGrad().compute_masks(
            tiny_resnet, 0.5, PruningContext(inputs=xb, targets=yb)
        )
        np.testing.assert_array_equal(before, tiny_resnet.bn.running_mean)

    def test_scoring_does_not_leave_gradients(self, tiny_resnet, tiny_cifar):
        loader = DataLoader(tiny_cifar.train, batch_size=32, shuffle=True, seed=0)
        xb, yb = loader.one_batch()
        GlobalMagGrad().compute_masks(
            tiny_resnet, 0.5, PruningContext(inputs=xb, targets=yb)
        )
        assert all(p.grad is None for p in tiny_resnet.parameters())

    def test_scoring_restores_training_mode(self, tiny_resnet, tiny_cifar):
        loader = DataLoader(tiny_cifar.train, batch_size=32, shuffle=True, seed=0)
        xb, yb = loader.one_batch()
        tiny_resnet.train()
        GlobalMagGrad().compute_masks(
            tiny_resnet, 0.5, PruningContext(inputs=xb, targets=yb)
        )
        assert tiny_resnet.training

    def test_different_minibatch_different_masks(self, tiny_resnet, tiny_cifar):
        l1 = DataLoader(tiny_cifar.train, batch_size=32, shuffle=True, seed=0)
        l2 = DataLoader(tiny_cifar.train, batch_size=32, shuffle=True, seed=9)
        m1 = GlobalMagGrad().compute_masks(
            tiny_resnet, 0.3, PruningContext(*l1.one_batch())
        )
        m2 = GlobalMagGrad().compute_masks(
            tiny_resnet, 0.3, PruningContext(*l2.one_batch())
        )
        assert any(not np.array_equal(m1[n], m2[n]) for n in m1)


class TestClassifierHandling:
    def test_prune_classifier_raises_achievable_cap(self):
        m1 = create_model("lenet-300-100", input_size=8, in_channels=1)
        m2 = create_model("lenet-300-100", input_size=8, in_channels=1)
        cap_default = Pruner(m1, GlobalMagWeight()).achievable_compression()
        cap_with_clf = Pruner(
            m2, GlobalMagWeight(prune_classifier=True)
        ).achievable_compression()
        assert cap_with_clf > cap_default

    def test_classifier_weights_untouched_by_default(self):
        m = create_model("lenet-300-100", input_size=8, in_channels=1)
        before = m.fc3.weight.data.copy()
        Pruner(m, GlobalMagWeight()).prune(8)
        np.testing.assert_array_equal(before, m.fc3.weight.data)

    def test_classifier_pruned_when_requested(self):
        m = create_model("lenet-300-100", input_size=8, in_channels=1)
        Pruner(m, GlobalMagWeight(prune_classifier=True)).prune(8)
        assert (m.fc3.weight.data == 0).any()


class TestSeedIsolation:
    def test_pretrain_seed_controls_init_not_data_order(self, tiny_cifar):
        a = create_model("resnet-20", width_scale=0.25, seed=1)
        b = create_model("resnet-20", width_scale=0.25, seed=2)
        assert not np.array_equal(a.stem.weight.data, b.stem.weight.data)

    def test_prunable_params_stable_order(self, tiny_resnet):
        names1 = [n for n, _ in prunable_parameters(tiny_resnet)]
        names2 = [n for n, _ in prunable_parameters(tiny_resnet)]
        assert names1 == names2
