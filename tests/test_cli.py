"""Smoke tests for the ``python -m repro`` CLI (run / expand / ls / cache)."""

import json

import pytest

from repro.cli import main
from repro.experiment import (
    ExperimentSpec,
    ResultCache,
    ResultSet,
    SweepConfig,
    OptimizerConfig,
    TrainConfig,
    spec_hash,
)


def tiny_sweep_file(tmp_path, **overrides):
    train = dict(epochs=1, batch_size=32,
                 optimizer=dict(name="adam", lr=2e-3),
                 early_stop_patience=None, restore_best=True)
    payload = dict(
        model="lenet-300-100",
        model_kwargs=dict(input_size=8, in_channels=3),
        dataset="cifar10",
        dataset_kwargs=dict(n_train=128, n_val=64, size=8, noise=0.5),
        strategies=["global_weight", "random"],
        compressions=[1, 2],
        seeds=[0],
        pretrain=train,
        finetune=dict(train, optimizer=dict(name="adam", lr=3e-4)),
    )
    payload.update(overrides)
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(payload))
    return path


class TestLs:
    def test_single_registry(self, capsys):
        assert main(["ls", "models"]) == 0
        out = capsys.readouterr().out
        assert "resnet-20" in out and "lenet-5" in out

    def test_all_registries(self, capsys):
        assert main(["ls"]) == 0
        out = capsys.readouterr().out
        for section in ("models:", "datasets:", "strategies:", "schedules:",
                        "optimizers:", "executors:"):
            assert section in out
        assert "one_shot" in out and "serial" in out

    def test_unknown_registry_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["ls", "nonsense"])


class TestExpand:
    def test_lists_cells_and_hashes(self, tmp_path, capsys):
        path = tiny_sweep_file(tmp_path)
        assert main(["expand", str(path)]) == 0
        out = capsys.readouterr().out
        assert "3 cell(s)" in out  # 1 deduped baseline + 2 strategies @ 2x
        assert "baseline (compression 1)" in out
        assert "global_weight @ 2x" in out

    def test_json_mode_round_trips_specs(self, tmp_path, capsys):
        path = tiny_sweep_file(tmp_path)
        assert main(["expand", str(path), "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert len(entries) == 3
        for entry in entries:
            h = entry.pop("hash")
            assert spec_hash(ExperimentSpec.from_dict(entry)) == h


class TestRun:
    def test_run_end_to_end_and_cache_resume(self, tmp_path, capsys):
        path = tiny_sweep_file(tmp_path)
        out_file = tmp_path / "rows.json"
        argv = ["run", str(path), "--cache-dir", str(tmp_path / "cache"),
                "--out", str(out_file)]
        assert main(argv) == 0
        rows = ResultSet.load(out_file)
        assert len(rows) == 4  # 2 baseline clones + 2 strategies @ 2x
        assert rows.strategies() == ["global_weight", "random"]

        # second invocation: pure cache hits, byte-identical output
        before = out_file.read_text()
        assert main(argv) == 0
        assert out_file.read_text() == before
        assert "[cache hit]" in capsys.readouterr().out

    def test_missing_config_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["run", str(tmp_path / "nope.json")])


class TestQueueCLI:
    """`run --executor queue` + the `worker` subcommand, in-process."""

    def test_run_via_queue_with_local_worker(self, tmp_path, capsys):
        """A bare queue run completes on its own: the submitter's default
        local worker thread drains the queue it just filled, the result
        cache defaults into the queue directory, and the table matches a
        plain serial run of the same config."""
        path = tiny_sweep_file(
            tmp_path, compressions=[1, 2], strategies=["global_weight"]
        )
        queue_dir = tmp_path / "q"
        out_file = tmp_path / "rows.json"
        assert main(["run", str(path), "--executor", "queue",
                     "--queue-dir", str(queue_dir),
                     "--wait-timeout", "120",
                     "--out", str(out_file)]) == 0
        assert (queue_dir / "cache").is_dir()  # cache defaulted into queue
        from repro.experiment import WorkQueue

        counts = WorkQueue(queue_dir).counts()
        assert counts["done"] == 2 and counts["failed"] == 0

        serial_out = tmp_path / "serial.json"
        assert main(["run", str(path), "--cache-dir", str(tmp_path / "ref"),
                     "--out", str(serial_out)]) == 0
        produced = ResultSet.load(out_file)
        reference = ResultSet.load(serial_out)
        assert [r.to_dict() for r in produced] == [
            r.to_dict() for r in reference
        ]

    def test_worker_subcommand_drains_a_queue(self, tmp_path, capsys):
        from repro.experiment import WorkQueue

        queue = WorkQueue(tmp_path / "q")
        config = SweepConfig.load(tiny_sweep_file(
            tmp_path, compressions=[1, 2], strategies=["global_weight"]
        ))
        specs = config.expand()
        for spec in specs:
            queue.submit(spec)
        assert main(["worker", str(tmp_path / "q"),
                     "--idle-timeout", "0", "--worker-id", "cli-w"]) == 0
        out = capsys.readouterr().out
        assert "cli-w" in out and "exiting after 2 cell(s)" in out
        assert queue.counts()["done"] == 2
        cache = ResultCache(tmp_path / "q" / "cache")
        assert all(cache.get(s) is not None for s in specs)

    def test_queue_without_queue_dir_rejected(self, tmp_path):
        path = tiny_sweep_file(tmp_path)
        with pytest.raises(ValueError, match="queue directory"):
            main(["run", str(path), "--executor", "queue"])

    def test_worker_once_exits_on_empty_queue(self, tmp_path, capsys):
        from repro.experiment import WorkQueue

        WorkQueue(tmp_path / "q")  # valid but empty
        assert main(["worker", str(tmp_path / "q"), "--once"]) == 0
        assert "exiting after 0 cell(s)" in capsys.readouterr().out

    def test_no_cache_with_queue_rejected(self, tmp_path):
        path = tiny_sweep_file(tmp_path)
        with pytest.raises(ValueError, match="no-cache"):
            main(["run", str(path), "--executor", "queue",
                  "--queue-dir", str(tmp_path / "q"), "--no-cache"])

    def test_queue_flags_on_other_executor_rejected(self, tmp_path):
        path = tiny_sweep_file(tmp_path)
        with pytest.raises(ValueError, match="--executor queue"):
            main(["run", str(path), "--lease-timeout", "30"])

    def test_executor_override_drops_config_executor_options(self, tmp_path):
        """A queue config replayed with --executor serial must not forward
        queue-only constructor options to SerialExecutor."""
        path = tiny_sweep_file(
            tmp_path, compressions=[1, 2], strategies=["global_weight"],
            executor="queue",
            executor_options={"queue_dir": str(tmp_path / "q"),
                              "lease_timeout": 3.0},
        )
        out_file = tmp_path / "rows.json"
        assert main(["run", str(path), "--executor", "serial",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--out", str(out_file)]) == 0
        assert len(ResultSet.load(out_file)) == 2
        assert not (tmp_path / "q").exists()  # the queue was never touched


class TestCacheCommands:
    def _populate(self, tmp_path, n=3):
        cache = ResultCache(tmp_path / "cache")
        cfg = SweepConfig(
            model="lenet-300-100", dataset="cifar10",
            strategies=("global_weight",), compressions=(1, 2, 4), seeds=(0,),
            pretrain=TrainConfig(epochs=1, optimizer=OptimizerConfig("adam", 2e-3)),
        )
        from repro.experiment.results import PruningResult

        for spec in cfg.expand()[:n]:
            cache.put(spec, PruningResult(
                model=spec.model, dataset=spec.dataset, strategy=spec.strategy,
                compression=spec.compression, seed=spec.seed, top1=0.5,
            ))
        return cache

    def test_stats(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert main(["cache", "stats",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "entries       : 3" in out
        assert "stale entries : 0" in out

    def test_gc_removes_stale_schema_orphans(self, tmp_path, capsys):
        cache = self._populate(tmp_path)
        # hand-craft an entry from an older schema version
        orphan = cache.root / "ff" / "ff00000000000000.json"
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_text(json.dumps({"schema": 1, "result": {}}))
        assert main(["cache", "gc",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "stale-schema orphans removed : 1" in out
        assert "entries kept                 : 3" in out
        assert not orphan.exists()

    def test_gc_max_entries(self, tmp_path, capsys):
        self._populate(tmp_path, n=3)
        assert main(["cache", "gc", "--max-entries", "1",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "evicted (count) removed      : 2" in out
        assert "entries kept                 : 1" in out

    def test_clear(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert main(["cache", "clear",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert "removed 3 entries" in capsys.readouterr().out
