"""Finite-difference validation of every op's backward pass (float64)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import (
    Tensor,
    avg_pool2d,
    batch_norm2d,
    conv2d,
    cross_entropy,
    depthwise_conv2d,
    gradcheck,
    log_softmax,
    max_pool2d,
    nll_loss,
    softmax,
)

RNG = np.random.default_rng(1234)


def T(shape, scale=1.0):
    return Tensor(RNG.normal(size=shape) * scale, requires_grad=True)


TOL = dict(eps=1e-5, atol=1e-5, rtol=1e-4)


class TestElementwiseGrads:
    def test_add_mul_chain(self):
        gradcheck(lambda a, b: ((a + b) * (a - b)).sum(), [T((3, 4)), T((3, 4))], **TOL)

    def test_div(self):
        a, b = T((3,)), Tensor(np.abs(RNG.normal(size=3)) + 1.0, requires_grad=True)
        gradcheck(lambda a, b: (a / b).sum(), [a, b], **TOL)

    def test_pow(self):
        a = Tensor(np.abs(RNG.normal(size=4)) + 0.5, requires_grad=True)
        gradcheck(lambda a: (a**3).sum(), [a], **TOL)

    def test_exp(self):
        gradcheck(lambda a: a.exp().sum(), [T((3, 3), 0.5)], **TOL)

    def test_log(self):
        a = Tensor(np.abs(RNG.normal(size=5)) + 0.5, requires_grad=True)
        gradcheck(lambda a: a.log().sum(), [a], **TOL)

    def test_sqrt(self):
        a = Tensor(np.abs(RNG.normal(size=5)) + 0.5, requires_grad=True)
        gradcheck(lambda a: a.sqrt().sum(), [a], **TOL)

    def test_tanh_sigmoid(self):
        gradcheck(lambda a: a.tanh().sum(), [T((4,))], **TOL)
        gradcheck(lambda a: a.sigmoid().sum(), [T((4,))], **TOL)

    def test_maximum(self):
        gradcheck(lambda a, b: a.maximum(b).sum(), [T((6,)), T((6,))], **TOL)


class TestShapeGrads:
    def test_reshape_transpose(self):
        gradcheck(
            lambda a: (a.reshape(6, 2).transpose() ** 2).sum(), [T((3, 4))], **TOL
        )

    def test_getitem(self):
        gradcheck(lambda a: (a[1:, :2] ** 2).sum(), [T((4, 4))], **TOL)

    def test_pad2d(self):
        gradcheck(lambda a: (a.pad2d(2) ** 2).sum(), [T((1, 2, 3, 3))], **TOL)

    def test_mean_axis(self):
        gradcheck(lambda a: (a.mean(axis=1) ** 2).sum(), [T((3, 5))], **TOL)

    def test_max_axis(self):
        # distinct values avoid tie-splitting vs numerical mismatch
        a = Tensor(np.linspace(0, 1, 12).reshape(3, 4) + RNG.normal(size=(3, 4)) * 0.01,
                   requires_grad=True)
        gradcheck(lambda a: a.max(axis=1).sum(), [a], eps=1e-6, atol=1e-4, rtol=1e-4)


class TestMatmulGrads:
    @pytest.mark.parametrize(
        "sa,sb",
        [((3, 4), (4, 5)), ((2, 3, 4), (4, 5)), ((4,), (4, 5)), ((3, 4), (4,))],
    )
    def test_matmul_shapes(self, sa, sb):
        gradcheck(lambda a, b: ((a @ b) ** 2).sum(), [T(sa), T(sb)], **TOL)


class TestConvGrads:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (3, 2)])
    def test_conv2d(self, stride, padding):
        gradcheck(
            lambda x, w, b: (conv2d(x, w, b, stride=stride, padding=padding) ** 2).sum(),
            [T((2, 3, 7, 7)), T((4, 3, 3, 3), 0.2), T((4,), 0.2)],
            **TOL,
        )

    def test_conv2d_5x5_kernel(self):
        gradcheck(
            lambda x, w: (conv2d(x, w, padding=2) ** 2).sum(),
            [T((1, 2, 6, 6)), T((3, 2, 5, 5), 0.2)],
            **TOL,
        )

    def test_grouped_conv(self):
        gradcheck(
            lambda x, w: (conv2d(x, w, padding=1, groups=2) ** 2).sum(),
            [T((2, 4, 5, 5)), T((6, 2, 3, 3), 0.2)],
            **TOL,
        )

    def test_depthwise(self):
        gradcheck(
            lambda x, w, b: (depthwise_conv2d(x, w, b, stride=2, padding=1) ** 2).sum(),
            [T((2, 3, 6, 6)), T((3, 1, 3, 3), 0.2), T((3,), 0.2)],
            **TOL,
        )

    def test_maxpool(self):
        x = Tensor(RNG.permutation(64).reshape(1, 1, 8, 8).astype(np.float64),
                   requires_grad=True)
        gradcheck(lambda x: (max_pool2d(x, 2, 2) ** 2).sum(), [x],
                  eps=1e-6, atol=1e-3, rtol=1e-3)

    def test_avgpool(self):
        gradcheck(lambda x: (avg_pool2d(x, 3, 2) ** 2).sum(), [T((2, 2, 7, 7))], **TOL)


class TestLossGrads:
    def test_cross_entropy(self):
        t = RNG.integers(0, 6, size=4)
        gradcheck(lambda l: cross_entropy(l, t), [T((4, 6))], **TOL)

    def test_nll_of_logsoftmax_matches_cross_entropy(self):
        logits = T((5, 7))
        t = RNG.integers(0, 7, size=5)
        ce = cross_entropy(logits, t)
        nl = nll_loss(log_softmax(logits), t)
        np.testing.assert_allclose(ce.data, nl.data, rtol=1e-6)

    def test_softmax_grad(self):
        gradcheck(lambda l: (softmax(l) ** 2).sum(), [T((3, 5))], **TOL)

    def test_log_softmax_grad(self):
        gradcheck(lambda l: (log_softmax(l) ** 2).sum(), [T((3, 5))], **TOL)


class TestBatchNormGrads:
    def test_train_mode(self):
        def fn(x, g, b):
            out = batch_norm2d(x, g, b, np.zeros(3), np.ones(3), training=True)
            return (out**2).sum()

        gradcheck(fn, [T((4, 3, 4, 4)), T((3,)), T((3,))], eps=1e-5, atol=1e-4, rtol=1e-3)

    def test_eval_mode(self):
        def fn(x, g, b):
            out = batch_norm2d(
                x, g, b, np.full(3, 0.2), np.full(3, 1.3), training=False
            )
            return (out**2).sum()

        gradcheck(fn, [T((2, 3, 3, 3)), T((3,)), T((3,))], **TOL)


class TestPropertyBased:
    @given(
        n=st.integers(1, 4),
        c=st.integers(1, 3),
        hw=st.integers(3, 7),
        k=st.integers(1, 3),
    )
    @settings(max_examples=15, deadline=None)
    def test_conv_grad_random_geometry(self, n, c, hw, k):
        if k > hw:
            return
        rng = np.random.default_rng(n * 100 + c * 10 + hw + k)
        x = Tensor(rng.normal(size=(n, c, hw, hw)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, c, k, k)) * 0.3, requires_grad=True)
        gradcheck(lambda x, w: (conv2d(x, w, padding=k // 2) ** 2).sum(), [x, w], **TOL)

    @given(shape=st.tuples(st.integers(1, 5), st.integers(1, 5)))
    @settings(max_examples=20, deadline=None)
    def test_sum_grad_is_ones(self, shape):
        a = Tensor(np.random.default_rng(0).normal(size=shape), requires_grad=True)
        a.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(shape))
