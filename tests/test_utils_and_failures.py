"""Utility modules + failure-injection tests across subsystems."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data import ArrayDataset, DataLoader
from repro.experiment import PruningResult, ResultSet, aggregate_curve
from repro.metrics import evaluate
from repro.models import create_model
from repro.nn import Linear
from repro.pruning import GlobalMagWeight, Pruner
from repro.utils import artifacts_dir, set_blas_threads
from repro.utils.threads import configure_blas_threads_from_env


class TestUtils:
    def test_artifacts_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path / "zzz"))
        p = artifacts_dir("sub")
        assert p.exists()
        assert str(p).startswith(str(tmp_path))

    def test_set_blas_threads_no_crash(self):
        # returns True on Linux+OpenBLAS, must never raise anywhere
        set_blas_threads(1)

    def test_configure_from_env_invalid_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLAS_THREADS", "not-a-number")
        configure_blas_threads_from_env()  # silently ignored

    def test_configure_from_env_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLAS_THREADS", "0")
        configure_blas_threads_from_env()  # no-op


class TestFailureInjection:
    def test_evaluate_empty_loader(self):
        ds = ArrayDataset(np.zeros((0, 1, 4, 4)), np.zeros(0))
        loader = DataLoader.__new__(DataLoader)  # bypass init validation
        loader.dataset = ds
        loader._x, loader._y = ds.x, ds.y
        loader.batch_size = 4
        loader.shuffle = False
        loader.transform = None
        loader.drop_last = False
        loader.rng = np.random.default_rng(0)
        m = create_model("lenet-300-100", input_size=4, in_channels=1)
        with pytest.raises(ValueError):
            evaluate(m, loader)

    def test_aggregate_empty_results(self):
        assert aggregate_curve([]) == []

    def test_resultset_filter_unknown_attr(self):
        rs = ResultSet([PruningResult(model="m", dataset="d", strategy="s",
                                      compression=2.0, seed=0)])
        with pytest.raises(AttributeError):
            rs.filter(nonexistent_field=1)

    def test_pruner_rejects_sub_unity_compression(self):
        m = create_model("lenet-300-100", input_size=8, in_channels=1)
        with pytest.raises(ValueError):
            Pruner(m, GlobalMagWeight()).prune(0.5)

    def test_corrupted_checkpoint_shape_rejected(self):
        m = create_model("lenet-300-100", input_size=8, in_channels=1)
        state = m.state_dict()
        state["fc1.weight"] = state["fc1.weight"][:, :-1]
        fresh = create_model("lenet-300-100", input_size=8, in_channels=1)
        with pytest.raises(ValueError):
            fresh.load_state_dict(state)

    def test_model_with_nan_weights_detected_by_eval(self, tiny_cifar):
        m = create_model("lenet-300-100", input_size=8, in_channels=3)
        m.fc1.weight.data[:] = np.nan
        loader = DataLoader(tiny_cifar.val, batch_size=32)
        out = evaluate(m, loader)
        assert np.isnan(out["loss"])  # surfaced, not hidden

    def test_masked_model_survives_forward_backward(self):
        # fully functional after heavy pruning: no NaN/shape corruption
        from repro.autograd import cross_entropy

        m = create_model("resnet-20", width_scale=0.25, seed=0)
        Pruner(m, GlobalMagWeight()).prune(10)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3, 8, 8)).astype(np.float32))
        loss = cross_entropy(m(x), np.zeros(4, dtype=np.int64))
        loss.backward()
        assert np.isfinite(loss.item())

    def test_double_prune_is_monotone(self):
        """Iterative pruning can only remove more weights, never revive."""
        m = create_model("lenet-300-100", input_size=8, in_channels=1)
        pruner = Pruner(m, GlobalMagWeight())
        pruner.prune(2)
        kept_2 = pruner.registry.total_kept()
        pruner.prune(4)
        kept_4 = pruner.registry.total_kept()
        assert kept_4 < kept_2
        pruner.registry.validate()

    def test_linear_layer_zero_input_dim_rejected_by_numpy(self):
        # degenerate-geometry guard: conv output shape must stay positive
        from repro.autograd import conv_output_shape

        with pytest.raises(ValueError):
            conv_output_shape((1, 1), (3, 3), 1, 0)
