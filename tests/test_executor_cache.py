"""Spec expansion, result cache, and executor tests.

Fast tests cover the pure layers (expansion, hashing, cache I/O) and the
serial executor on a micro-sweep; multi-process equivalence tests are marked
``slow`` and excluded from the tier-1 suite (run with ``-m slow``).
"""

import numpy as np
import pytest

from repro.experiment import (
    OptimizerConfig,
    ParallelExecutor,
    PruningExperiment,
    ResultCache,
    SerialExecutor,
    TrainConfig,
    assemble_results,
    expand_sweep,
    run_sweep,
    shard_specs,
    spec_hash,
)
from repro.experiment.results import PruningResult


def tiny_train(epochs=1):
    return TrainConfig(
        epochs=epochs,
        batch_size=32,
        optimizer=OptimizerConfig("adam", 2e-3),
        early_stop_patience=None,
    )


def tiny_specs(strategies=("global_weight",), compressions=(1, 2), seeds=(0,)):
    """A genuinely tiny but real grid: MLP on an 8px synthetic CIFAR."""
    return expand_sweep(
        model="lenet-300-100",
        dataset="cifar10",
        strategies=list(strategies),
        compressions=list(compressions),
        seeds=list(seeds),
        model_kwargs=dict(input_size=8, in_channels=3),
        dataset_kwargs=dict(n_train=128, n_val=64, size=8, noise=0.5),
        pretrain=tiny_train(),
        finetune=tiny_train(),
    )


class TestSpecHash:
    def test_deterministic(self):
        a, b = tiny_specs(), tiny_specs()
        assert [spec_hash(s) for s in a] == [spec_hash(s) for s in b]

    def test_unique_within_grid(self):
        specs = tiny_specs(("global_weight", "random"), (1, 2, 4), (0, 1))
        hashes = [spec_hash(s) for s in specs]
        assert len(set(hashes)) == len(hashes)

    def test_sensitive_to_every_axis(self):
        from dataclasses import replace

        base = tiny_specs()[1]  # the compression-2 cell
        for change in (
            dict(strategy="random"),
            dict(compression=4.0),
            dict(seed=9),
            dict(model="lenet-5"),
            dict(dataset="mnist"),
            dict(pretrain_seed=1),
            dict(finetune=tiny_train(epochs=2)),
            dict(model_kwargs=dict(input_size=8, in_channels=3, hidden=7)),
        ):
            assert spec_hash(replace(base, **change)) != spec_hash(base)

    def test_insensitive_to_kwargs_key_order(self):
        from dataclasses import replace

        base = tiny_specs()[0]
        flipped = replace(
            base, model_kwargs=dict(in_channels=3, input_size=8)
        )
        assert spec_hash(flipped) == spec_hash(base)

    def test_non_canonical_kwargs_fail_fast(self):
        # A tuple kwarg used to be stringified by json's default=str hook,
        # which made ``(8, 8)`` and ``[8, 8]`` alias iff their str() forms
        # matched whatever the hook emitted.  Now: lists hash, tuples raise.
        from dataclasses import replace

        base = tiny_specs()[0]
        listy = replace(base, dataset_kwargs=dict(shape=[8, 8]))
        assert spec_hash(listy)  # JSON-native: fine
        with pytest.raises(TypeError, match="dataset_kwargs"):
            spec_hash(replace(base, dataset_kwargs=dict(shape=(8, 8))))
        with pytest.raises(TypeError):
            spec_hash(replace(base, model_kwargs=dict(seeds={1, 2})))

    def test_tuple_and_list_kwargs_do_not_alias(self):
        # The regression guaranteed by fail-fast: no silent collision
        # between a tuple-carrying spec and its list twin.
        from dataclasses import replace

        base = tiny_specs()[0]
        listy = replace(base, dataset_kwargs=dict(shape=[8, 8]))
        tupley = replace(base, dataset_kwargs=dict(shape=(8, 8)))
        try:
            tuple_hash = spec_hash(tupley)
        except TypeError:
            tuple_hash = None  # fail-fast is the fix; aliasing is the bug
        assert tuple_hash != spec_hash(listy)

    def test_hash_values_unchanged_from_legacy_encoder(self):
        # canonical_json must be byte-identical to the old
        # ``json.dumps(..., sort_keys=True, default=str)`` for JSON-native
        # specs, or every existing cache entry would orphan.
        import hashlib
        import json
        from dataclasses import asdict

        from repro.experiment.cache import SCHEMA_VERSION

        for spec in tiny_specs(("global_weight", "random"), (1, 4), (0,)):
            legacy = hashlib.sha256(
                json.dumps(
                    {"schema": SCHEMA_VERSION, "spec": asdict(spec)},
                    sort_keys=True,
                    default=str,
                ).encode()
            ).hexdigest()[:16]
            assert spec_hash(spec) == legacy


class TestExpandSweep:
    def test_grid_shape_and_order(self):
        specs = tiny_specs(("global_weight", "random"), (1, 2, 4), (0, 1))
        # per seed: 1 deduped baseline + 2 compressions x 2 strategies
        assert len(specs) == 2 * (1 + 4)
        assert [s.seed for s in specs[:5]] == [0] * 5
        assert specs[0].compression == 1.0
        assert [(s.compression, s.strategy) for s in specs[1:5]] == [
            (2.0, "global_weight"), (2.0, "random"),
            (4.0, "global_weight"), (4.0, "random"),
        ]

    def test_duplicate_baseline_entries_deduped(self):
        """Regression: each duplicate compression<=1 entry used to re-run
        (and re-emit) the baseline."""
        once = tiny_specs(("global_weight", "random"), (1, 2), (0,))
        duped = tiny_specs(("global_weight", "random"), (1, 0.5, 1.0, 2), (0,))
        assert len(duped) == len(once) == 3
        assert [spec_hash(s) for s in duped] == [spec_hash(s) for s in once]

    def test_baseline_once_per_seed(self):
        from repro.experiment.runner import BASELINE_STRATEGY

        specs = tiny_specs(("global_weight", "random"), (1, 2), (0, 1, 2))
        baselines = [s for s in specs if s.compression <= 1.0]
        assert len(baselines) == 3
        assert {s.strategy for s in baselines} == {BASELINE_STRATEGY}

    def test_baseline_hash_independent_of_strategy_list(self):
        """Baseline cells are shared across sweeps with different strategy
        sets: same hash → same cache entry."""
        a = tiny_specs(("global_weight", "random"), (1,), (0,))
        b = tiny_specs(("random",), (1,), (0,))
        assert spec_hash(a[0]) == spec_hash(b[0])

    def test_no_dedupe_keeps_per_strategy_baselines(self):
        specs = expand_sweep(
            model="lenet-300-100",
            dataset="cifar10",
            strategies=["global_weight", "random"],
            compressions=[1, 2],
            seeds=[0],
            dedupe_baselines=False,
        )
        assert len(specs) == 4
        assert [s.strategy for s in specs if s.compression <= 1.0] == [
            "global_weight", "random",
        ]

    def test_empty_strategies_rejected(self):
        with pytest.raises(ValueError):
            expand_sweep(model="m", dataset="d", strategies=[])


class TestAssembleResults:
    def _row(self, spec):
        return PruningResult(
            model=spec.model, dataset=spec.dataset, strategy=spec.strategy,
            compression=spec.compression, seed=spec.seed, top1=0.5,
        )

    def test_baseline_replicated_per_strategy(self):
        strategies = ["global_weight", "random"]
        specs = tiny_specs(strategies, (1, 2), (0,))
        rs = assemble_results(specs, [self._row(s) for s in specs], strategies)
        assert len(rs) == 4  # 2 baseline clones + 2 pruned rows
        assert rs.filter(compression=1.0).strategies() == strategies
        clones = rs.filter(compression=1.0).results
        assert clones[0] is not clones[1]

    def test_no_replication_passthrough(self):
        specs = expand_sweep(
            model="lenet-300-100",
            dataset="cifar10",
            strategies=["global_weight"],
            compressions=[1, 2],
            seeds=[0],
            dedupe_baselines=False,
        )
        rows = [self._row(s) for s in specs]
        rs = assemble_results(specs, rows, ["global_weight"], replicate_baselines=False)
        assert [r.strategy for r in rs] == ["global_weight"] * 2
        assert rs.results[0] is rows[0]


class TestShardSpecs:
    def test_shards_partition_the_grid(self):
        specs = tiny_specs(("global_weight", "random"), (1, 2, 4), (0, 1))
        shards = [shard_specs(specs, i, 3) for i in range(3)]
        merged = [spec_hash(s) for shard in shards for s in shard]
        assert sorted(merged) == sorted(spec_hash(s) for s in specs)
        assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1

    def test_single_shard_is_identity(self):
        specs = tiny_specs()
        assert shard_specs(specs, 0, 1) == list(specs)

    def test_invalid_shards_rejected(self):
        specs = tiny_specs()
        with pytest.raises(ValueError):
            shard_specs(specs, 2, 2)
        with pytest.raises(ValueError):
            shard_specs(specs, 0, 0)
        with pytest.raises(ValueError):
            shard_specs(specs, -1, 2)


class TestResultCache:
    def _row(self):
        return PruningResult(
            model="lenet-300-100", dataset="cifar10", strategy="global_weight",
            compression=2.0, seed=0, top1=0.625, actual_compression=1.98,
            extra={"note": "x"},
        )

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = tiny_specs()[0]
        assert cache.get(spec) is None
        assert not cache.contains(spec)
        assert len(cache) == 0

    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = tiny_specs()[1]
        row = self._row()
        path = cache.put(spec, row)
        assert path.exists() and path.stem == spec_hash(spec)
        again = cache.get(spec)
        assert again is not row
        assert again.to_dict() == row.to_dict()
        assert cache.contains(spec) and spec in cache
        assert len(cache) == 1

    def test_hit_is_keyed_by_content(self, tmp_path):
        from dataclasses import replace

        cache = ResultCache(tmp_path / "cache")
        spec = tiny_specs()[1]
        cache.put(spec, self._row())
        assert cache.get(replace(spec, seed=5)) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = tiny_specs()[0]
        cache.put(spec, self._row())
        cache.path_for(spec).write_text("{not json")
        assert cache.get(spec) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = tiny_specs(("global_weight",), (1, 2, 4), (0,))
        for s in specs:
            cache.put(s, self._row())
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_nonfinite_round_trip_stays_strict_json(self, tmp_path):
        # inf/NaN used to serialize as bare Infinity/NaN tokens (via
        # ``default=float`` + ``allow_nan`` defaults), which strict JSON
        # parsers reject.  They now ride in __nonfinite__ sentinels.
        import json
        import math

        cache = ResultCache(tmp_path / "cache")
        spec = tiny_specs()[1]
        row = self._row()
        row.actual_compression = float("inf")
        row.top1 = float("nan")
        row.extra = {"worst": float("-inf"), "list": [float("nan"), 1.0]}
        path = cache.put(spec, row)

        def reject(token):
            raise AssertionError(f"bare {token} token in cache entry")

        on_disk = json.loads(path.read_text(), parse_constant=reject)
        assert on_disk["result"]["actual_compression"] == {
            "__nonfinite__": "inf"
        }

        again = cache.get(spec)
        assert again.actual_compression == float("inf")
        assert math.isnan(again.top1)
        assert again.extra["worst"] == float("-inf")
        assert math.isnan(again.extra["list"][0])
        assert again.extra["list"][1] == 1.0

    def test_stray_files_excluded_from_iteration(self, tmp_path):
        # _entries() used to glob ``??/*.json`` blind, so editor temp
        # files and junk under shard dirs inflated len()/stats and could
        # crash gc/iteration.  Plant every flavour of stray and assert
        # none are counted, iterated, or deleted.
        cache = ResultCache(tmp_path / "cache")
        specs = tiny_specs(("global_weight",), (1, 2), (0,))
        for s in specs:
            cache.put(s, self._row())
        shard = cache.path_for(specs[0]).parent
        strays = [
            shard / "orphan.json",                   # not a 16-hex name
            shard / "0123456789abcdef.json",         # hash not in this shard
            shard / (cache.path_for(specs[0]).name + ".tmp-123"),
        ]
        # a mis-sharded but otherwise well-formed hash: force a shard
        # prefix mismatch unless it accidentally matches
        if strays[1].name[:2] == shard.name:
            strays[1] = shard / "ffffffffffffffff.json"
        for stray in strays:
            stray.write_text("{}")

        assert len(cache) == 2
        from repro.experiment.cache import iter_cache_entries

        hashes = {h for h, _ in iter_cache_entries(cache.root)}
        assert hashes == {spec_hash(s) for s in specs}
        stats = cache.stats()
        assert stats["entries"] == 2
        for stray in strays:
            assert stray.exists()  # never deleted out from under the user


def _count_runs(monkeypatch):
    """Patch PruningExperiment.run to count invocations (still executing)."""
    calls = []
    original = PruningExperiment.run

    def counting(self):
        calls.append(self.spec)
        return original(self)

    monkeypatch.setattr(PruningExperiment, "run", counting)
    return calls


class TestSerialExecutor:
    def test_rows_align_with_specs(self, tmp_path):
        specs = tiny_specs(("global_weight",), (1, 2), (0,))
        rows = SerialExecutor(cache=ResultCache(tmp_path / "c")).run(specs)
        assert len(rows) == 2
        for spec, row in zip(specs, rows):
            assert (row.strategy, row.compression, row.seed) == (
                spec.strategy, spec.compression, spec.seed
            )

    def test_second_run_is_all_cache_hits(self, tmp_path, monkeypatch):
        specs = tiny_specs(("global_weight",), (1, 2), (0,))
        cache = ResultCache(tmp_path / "c")
        first = SerialExecutor(cache=cache).run(specs)

        def boom(self):
            raise AssertionError("cache hit expected — experiment re-ran")

        monkeypatch.setattr(PruningExperiment, "run", boom)
        messages = []
        second = SerialExecutor(cache=cache, progress=messages.append).run(specs)
        assert [r.to_dict() for r in second] == [r.to_dict() for r in first]
        assert all(m.endswith("[cache hit]") for m in messages)

    def test_duplicate_specs_run_once(self, tmp_path, monkeypatch):
        calls = _count_runs(monkeypatch)
        specs = tiny_specs(("global_weight",), (2,), (0,))
        doubled = specs + [specs[0]]
        rows = SerialExecutor(cache=ResultCache(tmp_path / "c")).run(doubled)
        assert len(calls) == 1
        assert rows[0].to_dict() == rows[1].to_dict()
        assert rows[0] is not rows[1]

    def test_uncached_executor_still_works(self):
        specs = tiny_specs(("global_weight",), (2,), (0,))
        rows = SerialExecutor().run(specs)
        assert rows[0].actual_compression == pytest.approx(2.0, rel=0.03)


class TestExecutorFor:
    def test_worker_count_mapping(self):
        from repro.experiment import executor_for

        assert isinstance(executor_for(1), SerialExecutor)
        assert isinstance(executor_for(2), ParallelExecutor)
        assert executor_for(2).workers == 2
        assert executor_for(0).workers >= 1  # all cores
        assert executor_for(None).workers >= 1

    def test_negative_workers_rejected(self):
        from repro.experiment import executor_for

        with pytest.raises(ValueError):
            executor_for(-1)


class TestRunSweepWrapper:
    def test_matrix_and_baseline_replication(self, tmp_path):
        results = run_sweep(
            model="lenet-300-100",
            dataset="cifar10",
            strategies=["global_weight", "random"],
            compressions=[1, 1, 2],  # duplicate baseline entry on purpose
            seeds=[0],
            model_kwargs=dict(input_size=8, in_channels=3),
            dataset_kwargs=dict(n_train=128, n_val=64, size=8, noise=0.5),
            pretrain=tiny_train(),
            finetune=tiny_train(),
            cache=ResultCache(tmp_path / "c"),
        )
        # 2 baseline clones + 2 strategies @ 2x; the duplicate "1" adds nothing
        assert len(results) == 4
        b = results.filter(compression=1.0)
        assert b.strategies() == ["global_weight", "random"]
        assert b.results[0].top1 == b.results[1].top1

    def test_explicit_executor_plus_cache_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            run_sweep(
                model="lenet-300-100",
                dataset="cifar10",
                strategies=["global_weight"],
                compressions=[1, 2],
                seeds=[0],
                executor=SerialExecutor(),
                cache=ResultCache(tmp_path / "c"),
            )


@pytest.mark.slow
class TestParallelExecutor:
    GRID = dict(
        strategies=("global_weight", "random"),
        compressions=(1, 2, 4),
        seeds=(0, 1),
    )

    def test_parallel_matches_serial_row_for_row(self, tmp_path):
        """Acceptance: 2 strategies x 3 compressions x 2 seeds, identical
        ResultSet rows in both modes; second parallel invocation completes
        purely from cache."""
        specs = tiny_specs(**self.GRID)
        serial_rows = SerialExecutor(cache=ResultCache(tmp_path / "serial")).run(specs)
        par_cache = ResultCache(tmp_path / "parallel")
        parallel_rows = ParallelExecutor(workers=2, cache=par_cache).run(specs)
        assert [r.to_dict() for r in parallel_rows] == [
            r.to_dict() for r in serial_rows
        ]

        strategies = list(self.GRID["strategies"])
        rs_serial = assemble_results(specs, serial_rows, strategies)
        rs_parallel = assemble_results(specs, parallel_rows, strategies)
        assert [r.to_dict() for r in rs_parallel] == [
            r.to_dict() for r in rs_serial
        ]

        # second invocation: all hits, no experiment executes
        import repro.experiment.prune as prune_mod

        def boom(self):
            raise AssertionError("cache hit expected — experiment re-ran")

        original = prune_mod.PruningExperiment.run
        prune_mod.PruningExperiment.run = boom
        try:
            again = ParallelExecutor(workers=2, cache=par_cache).run(specs)
        finally:
            prune_mod.PruningExperiment.run = original
        assert [r.to_dict() for r in again] == [r.to_dict() for r in parallel_rows]

    def test_partial_cache_resume(self, tmp_path):
        """Crash-resume: pre-populate half the cells, parallel run fills in
        only the rest and the assembled rows match an uncached serial run."""
        specs = tiny_specs(**self.GRID)
        cache = ResultCache(tmp_path / "resume")
        half = specs[: len(specs) // 2]
        for spec, row in zip(half, SerialExecutor().run(half)):
            cache.put(spec, row)
        rows = ParallelExecutor(workers=2, cache=cache).run(specs)
        reference = SerialExecutor().run(specs)
        assert [r.to_dict() for r in rows] == [r.to_dict() for r in reference]
        assert len(cache) == len(specs)

    def test_failed_cell_keeps_completed_results_cached(self, tmp_path):
        """One bad spec must not discard the good cells' work: the executor
        re-raises, but everything that finished is in the cache and a rerun
        without the bad spec completes from hits + the remainder."""
        from dataclasses import replace

        good = tiny_specs(**self.GRID)
        bad = replace(good[-1], strategy="not_a_strategy", compression=16.0)
        cache = ResultCache(tmp_path / "fail")
        with pytest.raises(KeyError, match="not_a_strategy"):
            ParallelExecutor(workers=2, cache=cache).run(good + [bad])
        assert len(cache) >= 1  # completed cells were persisted, not dropped
        rows = ParallelExecutor(workers=2, cache=cache).run(good)
        reference = SerialExecutor(cache=ResultCache(tmp_path / "ref")).run(good)
        assert [r.to_dict() for r in rows] == [r.to_dict() for r in reference]

    def test_sharded_runs_merge_via_cache(self, tmp_path):
        specs = tiny_specs(**self.GRID)
        cache = ResultCache(tmp_path / "shards")
        for i in range(2):
            ParallelExecutor(workers=2, cache=cache).run(shard_specs(specs, i, 2))
        assert len(cache) == len(specs)
        # merge invocation: everything is a hit
        merged = SerialExecutor(cache=cache, progress=None).run(specs)
        reference = SerialExecutor(cache=ResultCache(tmp_path / "ref")).run(specs)
        assert [r.to_dict() for r in merged] == [r.to_dict() for r in reference]


@pytest.mark.slow
class TestSweepCLI:
    def test_cli_runs_and_caches(self, tmp_path, capsys):
        from repro.experiment.sweep import main

        out = tmp_path / "rows.json"
        argv = [
            "--model", "lenet-300-100", "--dataset", "cifar10",
            "--strategies", "global_weight,random",
            "--compressions", "1,2", "--seeds", "0",
            "--model-kwargs", '{"input_size": 8, "in_channels": 3}',
            "--dataset-kwargs", '{"n_train": 128, "n_val": 64, "size": 8, "noise": 0.5}',
            "--pretrain-epochs", "1", "--finetune-epochs", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out),
        ]
        assert main(argv) == 0
        from repro.experiment import ResultSet

        rows = ResultSet.load(out)
        assert len(rows) == 4  # 2 baseline clones + 2 strategies @ 2x
        assert rows.strategies() == ["global_weight", "random"]

        # re-run: pure cache hits, identical output file contents
        before = out.read_text()
        assert main(argv + ["--workers", "2"]) == 0
        assert out.read_text() == before
        assert "[cache hit]" in capsys.readouterr().out


class TestResultCacheGC:
    def _fill(self, cache, n=4):
        specs = tiny_specs(("global_weight", "random"), (1, 2, 4), (0,))[:n]
        for spec in specs:
            cache.put(spec, PruningResult(
                model=spec.model, dataset=spec.dataset, strategy=spec.strategy,
                compression=spec.compression, seed=spec.seed, top1=0.5,
            ))
        return specs

    def test_orphan_sweep_removes_stale_schema(self, tmp_path):
        import json as _json

        cache = ResultCache(tmp_path / "c")
        self._fill(cache, n=2)
        orphan = cache.root / "aa" / "aa00000000000000.json"
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_text(_json.dumps({"schema": 1, "result": {"top1": 0.1}}))
        torn = cache.root / "bb" / "bb00000000000000.json"
        torn.parent.mkdir(parents=True, exist_ok=True)
        torn.write_text("{not json")
        removed = cache.gc()
        assert removed["stale"] == 2  # the old-schema entry and the torn file
        assert removed["kept"] == 2
        assert not orphan.exists() and not torn.exists()

    def test_age_based_eviction(self, tmp_path):
        import os as _os
        import time as _time

        cache = ResultCache(tmp_path / "c")
        specs = self._fill(cache, n=3)
        old = cache.path_for(specs[0])
        past = _time.time() - 1000
        _os.utime(old, (past, past))
        removed = cache.gc(max_age=500)
        assert removed["expired"] == 1
        assert removed["kept"] == 2
        assert not old.exists()

    def test_count_based_eviction_drops_oldest(self, tmp_path):
        import os as _os
        import time as _time

        cache = ResultCache(tmp_path / "c")
        specs = self._fill(cache, n=3)
        oldest = cache.path_for(specs[0])
        past = _time.time() - 1000
        _os.utime(oldest, (past, past))
        removed = cache.gc(max_entries=2)
        assert removed["evicted"] == 1
        assert not oldest.exists()
        assert len(cache) == 2

    def test_invalid_args_rejected(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        with pytest.raises(ValueError):
            cache.gc(max_age=-1)
        with pytest.raises(ValueError):
            cache.gc(max_entries=-1)

    def test_stats(self, tmp_path):
        from repro.experiment.cache import SCHEMA_VERSION

        cache = ResultCache(tmp_path / "c")
        self._fill(cache, n=2)
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["size_bytes"] > 0
        assert stats["by_schema"] == {str(SCHEMA_VERSION): 2}
        assert stats["stale_entries"] == 0


class TestBaselineReplication:
    """Satellite: pruned cells leave the baseline row in the cache, so a
    shard holding only pruned cells still contributes baselines."""

    def test_pruned_cell_caches_baseline_row(self, tmp_path):
        from repro.experiment import baseline_spec_for

        baseline_spec, pruned_spec = tiny_specs(("global_weight",), (1, 2), (0,))
        cache = ResultCache(tmp_path / "c")
        SerialExecutor(cache=cache).run([pruned_spec])  # baseline never ran
        assert cache.contains(baseline_spec)
        assert baseline_spec_for(pruned_spec) == baseline_spec

    def test_synthesized_baseline_matches_executed_baseline(self, tmp_path):
        baseline_spec, pruned_spec = tiny_specs(("global_weight",), (1, 2), (0,))
        cache = ResultCache(tmp_path / "c")
        SerialExecutor(cache=cache).run([pruned_spec])
        synthesized = cache.get(baseline_spec)
        executed = SerialExecutor().run([baseline_spec])[0]
        assert synthesized.to_dict() == executed.to_dict()

    def test_merge_completes_from_hits_without_baseline_shard(self, tmp_path, monkeypatch):
        """A shard of only-pruned cells + a merge run over the full grid:
        the merge's baseline cells are cache hits, nothing re-executes."""
        specs = tiny_specs(("global_weight", "random"), (1, 2), (0,))
        pruned_only = [s for s in specs if s.compression > 1.0]
        cache = ResultCache(tmp_path / "c")
        SerialExecutor(cache=cache).run(pruned_only)

        def boom(self):
            raise AssertionError("cache hit expected — experiment re-ran")

        monkeypatch.setattr(PruningExperiment, "run", boom)
        rows = SerialExecutor(cache=cache).run(specs)
        assert [r.strategy for r in rows if r.compression <= 1.0]


class TestProgressEvents:
    """Satellite: executors report structured (done, total, elapsed)."""

    def test_serial_event_stream(self, tmp_path):
        from repro.experiment import ProgressEvent

        specs = tiny_specs(("global_weight",), (1, 2), (0,))
        events = []
        SerialExecutor(
            cache=ResultCache(tmp_path / "c"), on_event=events.append
        ).run(specs)
        assert all(isinstance(e, ProgressEvent) for e in events)
        starts = [e for e in events if e.kind == "start"]
        dones = [e for e in events if e.kind == "done"]
        assert len(starts) == len(dones) == len(specs)
        assert [e.done for e in dones] == [1, 2]
        assert all(e.total == len(specs) for e in events)
        assert all(e.elapsed >= 0.0 for e in events)
        assert all(e.worker == 0 for e in dones)
        assert [e.worker_done for e in dones] == [1, 2]

    def test_cache_hits_reported_as_events(self, tmp_path):
        specs = tiny_specs(("global_weight",), (1, 2), (0,))
        cache = ResultCache(tmp_path / "c")
        SerialExecutor(cache=cache).run(specs)
        events = []
        SerialExecutor(cache=cache, on_event=events.append).run(specs)
        assert [e.kind for e in events] == ["cache-hit", "cache-hit"]
        assert events[-1].done == len(specs)
        assert all(e.worker is None for e in events)

    def test_legacy_string_progress_still_works(self, tmp_path):
        specs = tiny_specs(("global_weight",), (1, 2), (0,))
        messages = []
        SerialExecutor(
            cache=ResultCache(tmp_path / "c"), progress=messages.append
        ).run(specs)
        assert len(messages) == len(specs)
        assert all("seed 0" in m for m in messages)


@pytest.mark.slow
class TestParallelProgressEvents:
    def test_parallel_event_stream_tracks_workers(self, tmp_path):
        specs = tiny_specs(("global_weight", "random"), (1, 2, 4), (0,))
        events = []
        ParallelExecutor(
            workers=2, cache=ResultCache(tmp_path / "c"),
            on_event=events.append,
        ).run(specs)
        dones = [e for e in events if e.kind == "done"]
        assert len(dones) == len(specs)
        assert sorted(e.done for e in dones) == list(range(1, len(specs) + 1))
        assert all(e.total == len(specs) for e in dones)
        assert all(e.worker is not None for e in dones)
        # per-worker completion counts sum to the total
        per_worker = {}
        for e in dones:
            per_worker[e.worker] = max(per_worker.get(e.worker, 0), e.worker_done)
        assert sum(per_worker.values()) == len(specs)
