"""Unit tests for the Tensor core: ops, broadcasting, backward mechanics."""

import numpy as np
import pytest

from repro.autograd import Tensor, as_tensor, cat, is_grad_enabled, no_grad, stack, unbroadcast


class TestConstruction:
    def test_float_list_becomes_float32(self):
        t = Tensor([1.0, 2.0])
        assert t.dtype == np.float32

    def test_float64_ndarray_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_float16_upcast(self):
        t = Tensor(np.zeros(3, dtype=np.float16))
        assert t.dtype == np.float32

    def test_int_preserved(self):
        t = Tensor(np.arange(3))
        assert t.dtype.kind == "i"

    def test_shape_size_ndim(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.size == 24
        assert t.ndim == 3
        assert len(t) == 2

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_item_scalar(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad
        assert b._parents == ()

    def test_as_tensor_identity(self):
        a = Tensor([1.0])
        assert as_tensor(a) is a


class TestArithmetic:
    def test_add_backward_both(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        np.testing.assert_allclose(b.grad, [1, 1])

    def test_radd_scalar(self):
        a = Tensor([1.0], requires_grad=True)
        (2.0 + a).backward()
        np.testing.assert_allclose(a.grad, [1])

    def test_sub_and_rsub(self):
        a = Tensor([5.0], requires_grad=True)
        (a - 2.0).backward()
        np.testing.assert_allclose(a.grad, [1])
        a.zero_grad()
        (2.0 - a).backward()
        np.testing.assert_allclose(a.grad, [-1])

    def test_mul_backward(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([5.0], requires_grad=True)
        (a * b).backward()
        np.testing.assert_allclose(a.grad, [5])
        np.testing.assert_allclose(b.grad, [2])

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.5])

    def test_rtruediv(self):
        b = Tensor([2.0], requires_grad=True)
        (8.0 / b).backward()
        np.testing.assert_allclose(b.grad, [-2.0])

    def test_neg(self):
        a = Tensor([1.0], requires_grad=True)
        (-a).backward()
        np.testing.assert_allclose(a.grad, [-1])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a**2).backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_gradient_accumulation_across_uses(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a).backward()  # d(a^2)/da = 2a = 4
        np.testing.assert_allclose(a.grad, [4.0])

    def test_broadcast_add_unbroadcasts(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, [3, 3, 3, 3])

    def test_matmul_2d(self):
        a = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        b = Tensor(np.array([[3.0], [4.0]]), requires_grad=True)
        out = a @ b
        out.backward()
        np.testing.assert_allclose(a.grad, [[3, 4]])
        np.testing.assert_allclose(b.grad, [[1], [2]])

    def test_matmul_vec_vec(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a @ b).backward()
        np.testing.assert_allclose(a.grad, [3, 4])
        np.testing.assert_allclose(b.grad, [1, 2])


class TestElementwise:
    def test_exp_log_roundtrip_grad(self):
        a = Tensor(np.array([0.5, 1.5]), requires_grad=True)
        a.exp().log().sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1], atol=1e-5)

    def test_sqrt(self):
        a = Tensor(np.array([4.0]), requires_grad=True)
        a.sqrt().backward()
        np.testing.assert_allclose(a.grad, [0.25])

    def test_abs_sign(self):
        a = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        a.abs().sum().backward()
        np.testing.assert_allclose(a.grad, [-1, 1])

    def test_relu_zeroes_negatives(self):
        a = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        out = a.relu()
        np.testing.assert_allclose(out.data, [0, 2])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0, 1])

    def test_tanh_sigmoid_range(self):
        a = Tensor(np.linspace(-3, 3, 7))
        assert np.all(np.abs(a.tanh().data) < 1)
        s = a.sigmoid().data
        assert np.all((s > 0) & (s < 1))

    def test_clip_gradient_gate(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        a.clip(-1, 1).sum().backward()
        np.testing.assert_allclose(a.grad, [0, 1, 0])

    def test_maximum(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 2.0]), requires_grad=True)
        a.maximum(b).sum().backward()
        np.testing.assert_allclose(a.grad, [0, 1])
        np.testing.assert_allclose(b.grad, [1, 0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_scales_gradient(self):
        a = Tensor(np.ones(4), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, [0.25] * 4)

    def test_mean_axis_tuple(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        a.mean(axis=(1, 2)).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3, 4), 1 / 12))

    def test_max_ties_split(self):
        a = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5, 0])

    def test_var_matches_numpy(self):
        x = np.random.default_rng(0).normal(size=(4, 5))
        v = Tensor(x).var(axis=0)
        np.testing.assert_allclose(v.data, x.var(axis=0), rtol=1e-5)

    def test_backward_requires_scalar(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            a.backward()


class TestShapes:
    def test_reshape_roundtrip(self):
        a = Tensor(np.arange(6, dtype=np.float32), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        assert a.grad.shape == (6,)

    def test_transpose_inverse(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        a.transpose(2, 0, 1).sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_T_property(self):
        a = Tensor(np.ones((2, 3)))
        assert a.T.shape == (3, 2)

    def test_flatten(self):
        a = Tensor(np.ones((2, 3, 4)))
        assert a.flatten().shape == (2, 12)

    def test_getitem_scatter_gradient(self):
        a = Tensor(np.arange(5, dtype=np.float32), requires_grad=True)
        a[1:3].sum().backward()
        np.testing.assert_allclose(a.grad, [0, 1, 1, 0, 0])

    def test_getitem_repeated_index_accumulates(self):
        a = Tensor(np.zeros(3), requires_grad=True)
        a[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(a.grad, [2, 0, 1])

    def test_pad2d_and_backward(self):
        a = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        p = a.pad2d(1)
        assert p.shape == (1, 1, 4, 4)
        p.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((1, 1, 2, 2)))

    def test_cat_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = cat([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 2).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2))
        np.testing.assert_allclose(b.grad, np.full((3, 2), 2))

    def test_stack_backward(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        out = stack([a, b])
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1, 1])


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad
        assert out._parents == ()

    def test_no_grad_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()

    def test_no_grad_is_thread_local(self):
        """Regression: grad mode was a process-wide global, so one worker
        thread evaluating under no_grad() silently stopped a concurrently
        *training* thread from recording its tape (queue-executor threads
        produced different metrics than a serial run)."""
        import threading

        entered = threading.Event()
        release = threading.Event()
        observed = {}

        def holder():
            with no_grad():
                observed["holder_disabled"] = not is_grad_enabled()
                entered.set()
                release.wait(timeout=10)

        t = threading.Thread(target=holder)
        t.start()
        try:
            assert entered.wait(timeout=10)
            # this thread still records graphs while the other holds no_grad
            assert is_grad_enabled()
            a = Tensor([3.0], requires_grad=True)
            out = (a * 2).sum()
            assert out.requires_grad
            out.backward()
            np.testing.assert_allclose(a.grad, [2.0])
        finally:
            release.set()
            t.join(timeout=10)
        assert observed["holder_disabled"]
        assert is_grad_enabled()


class TestUnbroadcast:
    def test_noop_when_same_shape(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_leading_dims(self):
        g = np.ones((5, 2, 3))
        out = unbroadcast(g, (2, 3))
        np.testing.assert_allclose(out, np.full((2, 3), 5))

    def test_sums_size_one_dims(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (2, 1))
        np.testing.assert_allclose(out, [[3], [3]])

    def test_inverse_of_broadcast(self, rng):
        base = rng.normal(size=(1, 4))
        g = np.broadcast_to(rng.normal(size=(3, 4)), (3, 4))
        out = unbroadcast(g.copy(), (1, 4))
        np.testing.assert_allclose(out, g.sum(axis=0, keepdims=True))


class TestDeepGraph:
    def test_deep_chain_no_recursion_error(self):
        # ResNet-110 depth graphs must not hit the recursion limit.
        a = Tensor([1.0], requires_grad=True)
        out = a
        for _ in range(2000):
            out = out + 1.0
        out.backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_diamond_graph_accumulates_once_per_path(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2
        c = a * 3
        (b + c).backward()
        np.testing.assert_allclose(a.grad, [5.0])
