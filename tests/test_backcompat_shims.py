"""Back-compat shims: equivalence with the new API + warn-exactly-once.

The four historical entry points (``create_model``, ``create_strategy``,
``build_dataset``, ``run_sweep``) are thin wrappers over the registry /
SweepConfig API.  They must produce identical objects/results and emit a
``DeprecationWarning`` exactly once per process each.
"""

import warnings

import numpy as np
import pytest

import repro.registry as registry_mod
from repro.experiment import (
    DATASETS,
    OptimizerConfig,
    ResultCache,
    SweepConfig,
    TrainConfig,
    build_dataset,
    run_config,
    run_sweep,
)
from repro.models import MODELS, create_model
from repro.pruning import STRATEGIES, create_strategy


@pytest.fixture
def fresh_deprecations():
    """Reset the warn-once bookkeeping so each test observes first use."""
    saved = set(registry_mod._WARNED)
    registry_mod._WARNED.clear()
    yield
    registry_mod._WARNED.clear()
    registry_mod._WARNED.update(saved)


def _collect(fn):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fn()
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


SWEEP_KW = dict(
    model="lenet-300-100",
    dataset="cifar10",
    strategies=["global_weight"],
    compressions=[1, 2],
    seeds=[0],
    model_kwargs=dict(input_size=8, in_channels=3),
    dataset_kwargs=dict(n_train=128, n_val=64, size=8, noise=0.5),
    pretrain=TrainConfig(epochs=1, batch_size=32,
                         optimizer=OptimizerConfig("adam", 2e-3),
                         early_stop_patience=None),
    finetune=TrainConfig(epochs=1, batch_size=32,
                         optimizer=OptimizerConfig("adam", 3e-4),
                         early_stop_patience=None),
)


class TestWarnExactlyOnce:
    @pytest.mark.parametrize("shim,call", [
        ("create_model",
         lambda: create_model("lenet-300-100", input_size=8, in_channels=1)),
        ("create_strategy", lambda: create_strategy("global_weight")),
        ("build_dataset",
         lambda: build_dataset("cifar10", n_train=16, n_val=16, size=8)),
    ])
    def test_shim_warns_once(self, fresh_deprecations, shim, call):
        first = _collect(call)
        assert len(first) == 1, shim
        assert shim in str(first[0].message)
        assert "deprecated" in str(first[0].message)
        # second call: silent
        assert _collect(call) == []

    def test_run_sweep_warns_once(self, fresh_deprecations, tmp_path):
        def call():
            run_sweep(cache=ResultCache(tmp_path / "c"), **SWEEP_KW)

        first = _collect(call)
        assert len(first) == 1
        assert "run_sweep" in str(first[0].message)
        assert _collect(call) == []


class TestShimEquivalence:
    def test_create_model_matches_registry(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = create_model("lenet-300-100", input_size=8, in_channels=1, seed=3)
        new = MODELS.create("lenet-300-100", input_size=8, in_channels=1, seed=3)
        for (ka, va), (kb, vb) in zip(
            sorted(old.state_dict().items()), sorted(new.state_dict().items())
        ):
            assert ka == kb
            np.testing.assert_array_equal(va, vb)

    def test_create_strategy_matches_registry(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = create_strategy("global_weight", prune_classifier=True)
        new = STRATEGIES.create("global_weight", prune_classifier=True)
        assert type(old) is type(new)
        assert old.prune_classifier == new.prune_classifier

    def test_build_dataset_matches_registry(self):
        kw = dict(n_train=32, n_val=16, size=8)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = build_dataset("cifar10", **kw)
        new = DATASETS.create("cifar10", **kw)
        assert type(old) is type(new)
        np.testing.assert_array_equal(old.train.x, new.train.x)
        np.testing.assert_array_equal(old.train.y, new.train.y)

    def test_run_sweep_matches_run_config(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = run_sweep(cache=ResultCache(tmp_path / "old"), **SWEEP_KW)
        config = SweepConfig(**{
            **SWEEP_KW,
            "strategies": tuple(SWEEP_KW["strategies"]),
            "compressions": tuple(SWEEP_KW["compressions"]),
            "seeds": tuple(SWEEP_KW["seeds"]),
        })
        new = run_config(config, cache=ResultCache(tmp_path / "new"))
        assert [r.to_dict() for r in old] == [r.to_dict() for r in new]
