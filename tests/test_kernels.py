"""The kernels backend layer: registry/selection, the buffer pool, and
byte/tolerance equivalence of every ``fast`` kernel against ``reference``.

Equivalence contract under test (see ``src/repro/kernels/``):

* ``fast`` is **byte-equal** to ``reference`` — switching backends must not
  change a single bit of any result, so cached rows and training
  trajectories are backend-independent.
* ``fast-f32`` is byte-equal to ``reference-f32`` (the float32 mode has its
  own byte oracle) and within documented tolerance of the float64
  ``reference``.
"""

import gc
import json

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    conv2d,
    conv2d_bias_relu,
    cross_entropy,
    gradcheck,
    linear,
    max_pool2d,
)
from repro.kernels import (
    DEFAULT_BACKEND,
    ENV_VAR,
    KERNELS,
    BufferPool,
    active_backend,
    active_backend_name,
    resolve_backend,
    set_backend,
    use_backend,
)

RNG = np.random.default_rng(20260807)

#: tolerance for float32-throughout results vs the float64 reference
F32_TOL = dict(rtol=1e-4, atol=1e-5)


@pytest.fixture(autouse=True)
def _clean_backend_state(monkeypatch):
    """Each test starts from the documented default selection state."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    set_backend(None)
    yield
    set_backend(None)


def conv_case(shape=(4, 5, 13, 11), c_out=7, k=3, bias=True, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape)
    w = rng.standard_normal((c_out, shape[1], k, k))
    b = rng.standard_normal(c_out) if bias else None
    return x, w, b


def assert_bytes_equal(a, b):
    __tracebackhide__ = True
    assert a.dtype == b.dtype and a.shape == b.shape
    assert a.tobytes() == b.tobytes()


# --------------------------------------------------------------------------
# registry + selection precedence
# --------------------------------------------------------------------------

class TestRegistryAndSelection:
    def test_four_backends_registered(self):
        assert set(KERNELS.available()) >= {
            "reference", "reference-f32", "fast", "fast-f32"
        }

    def test_default_is_reference(self):
        assert active_backend_name() == DEFAULT_BACKEND == "reference"

    def test_resolve_backend_is_singleton(self):
        assert resolve_backend("fast") is resolve_backend("fast")
        # but the registry itself mints fresh instances
        assert KERNELS.create("fast") is not KERNELS.create("fast")

    def test_resolve_backend_passes_instances_through(self):
        kb = resolve_backend("fast")
        assert resolve_backend(kb) is kb

    def test_unknown_backend_fails_loudly(self):
        with pytest.raises(KeyError):
            resolve_backend("fastt")
        with pytest.raises(KeyError):
            set_backend("nope")
        with pytest.raises(KeyError):
            use_backend("nope").__enter__()

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fast")
        assert active_backend_name() == "fast"

    def test_set_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fast")
        set_backend("reference-f32")
        assert active_backend_name() == "reference-f32"
        set_backend(None)  # clearing falls back to the env var
        assert active_backend_name() == "fast"

    def test_use_backend_beats_everything_and_nests(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "reference-f32")
        set_backend("reference")
        with use_backend("fast") as kb:
            assert kb.name == "fast"
            with use_backend("fast-f32"):
                assert active_backend_name() == "fast-f32"
            assert active_backend_name() == "fast"
        assert active_backend_name() == "reference"

    def test_use_backend_none_is_passthrough(self):
        with use_backend("fast"):
            with use_backend(None) as kb:
                assert kb.name == "fast"

    def test_f32_backends_have_compute_dtype(self):
        assert resolve_backend("fast-f32").compute_dtype == np.float32
        assert resolve_backend("reference-f32").compute_dtype == np.float32
        assert resolve_backend("reference").compute_dtype is None


# --------------------------------------------------------------------------
# buffer pool
# --------------------------------------------------------------------------

class TestBufferPool:
    def test_acquire_release_recycles_the_same_array(self):
        pool = BufferPool()
        a = pool.acquire((8, 8), np.float64)
        pool.release(a)
        assert pool.acquire((8, 8), np.float64) is a
        assert pool.stats()["hits"] == 1
        assert pool.stats()["misses"] == 1

    def test_distinct_keys_do_not_alias(self):
        pool = BufferPool()
        a = pool.acquire((8, 8), np.float64)
        pool.release(a)
        assert pool.acquire((8, 8), np.float32) is not a
        assert pool.acquire((4, 16), np.float64) is not a

    def test_max_per_key_bounds_retention(self):
        pool = BufferPool(max_per_key=2)
        arrays = [pool.acquire((4,), np.float64) for _ in range(4)]
        for arr in arrays:
            pool.release(arr)
        assert pool.stats()["retained_bytes"] == 2 * arrays[0].nbytes

    def test_max_bytes_bounds_retention(self):
        pool = BufferPool(max_bytes=100)
        big = pool.acquire((64,), np.float64)  # 512 bytes > cap
        pool.release(big)
        assert pool.stats()["retained_bytes"] == 0
        assert pool.acquire((64,), np.float64) is not big

    def test_clear_and_release_none(self):
        pool = BufferPool()
        pool.release(None)  # no-op
        pool.release(pool.acquire((4,), np.float64))
        pool.clear()
        assert pool.stats()["retained_bytes"] == 0
        assert pool.stats()["keys"] == 0


# --------------------------------------------------------------------------
# byte equivalence: fast vs reference, kernel by kernel
# --------------------------------------------------------------------------

GEOMETRIES = [
    # (stride, padding, bias) over an odd-shaped input so BLAS-path
    # differences can't hide behind power-of-two sizes
    (1, 1, True),
    (1, 0, True),
    (2, 1, False),
    (2, 2, True),
    (3, 0, False),
    (1, 2, True),
]


class TestConvEquivalence:
    @pytest.mark.parametrize("stride,padding,bias", GEOMETRIES)
    def test_conv2d_forward_backward_byte_equal(self, stride, padding, bias):
        fast, ref = resolve_backend("fast"), resolve_backend("reference")
        x, w, b = conv_case(bias=bias)
        out_f, ctx_f = fast.conv2d_forward(x, w, b, stride, padding, True)
        out_r, ctx_r = ref.conv2d_forward(x, w, b, stride, padding, True)
        assert_bytes_equal(out_f, out_r)
        g = np.random.default_rng(1).standard_normal(out_f.shape)
        grads_f = fast.conv2d_backward(g, ctx_f)
        grads_r = ref.conv2d_backward(g, ctx_r)
        assert len(grads_f) == len(grads_r) == (3 if bias else 2)
        for gf, gr in zip(grads_f, grads_r):
            assert_bytes_equal(gf, gr)

    def test_conv2d_forward_without_ctx(self):
        fast = resolve_backend("fast")
        x, w, b = conv_case()
        out, ctx = fast.conv2d_forward(x, w, b, 1, 1, False)
        assert ctx is None
        out_ref, _ = resolve_backend("reference").conv2d_forward(
            x, w, b, 1, 1, False
        )
        assert_bytes_equal(out, out_ref)

    def test_repeated_backward_on_retained_ctx_is_stable(self):
        # The pooled cols buffer must not be recycled while the ctx lives:
        # a second backward over the same tape has to read intact data even
        # after other conv calls have churned the pool in between.
        fast = resolve_backend("fast")
        x, w, b = conv_case()
        out, ctx = fast.conv2d_forward(x, w, b, 1, 1, True)
        g = np.random.default_rng(2).standard_normal(out.shape)
        first = [a.copy() for a in fast.conv2d_backward(g, ctx)]
        x2, w2, b2 = conv_case(seed=9)
        fast.conv2d_forward(x2, w2, b2, 1, 1, True)  # churn the pool
        for a, bb in zip(first, fast.conv2d_backward(g, ctx)):
            assert_bytes_equal(a, bb)

    def test_ctx_release_returns_cols_to_pool(self):
        fast = resolve_backend("fast")
        fast.clear_pool()
        x, w, b = conv_case()
        out, ctx = fast.conv2d_forward(x, w, b, 1, 1, True)
        retained_before = fast.pool.stats()["retained_bytes"]
        del ctx
        gc.collect()
        assert fast.pool.stats()["retained_bytes"] > retained_before

    @pytest.mark.parametrize("pair", [
        ("fast", "reference"), ("fast-f32", "reference-f32")
    ])
    def test_fused_conv_bias_relu_byte_equal(self, pair):
        fast, ref = (resolve_backend(n) for n in pair)
        x, w, b = conv_case()
        out_f, ctx_f = fast.fused_conv_bias_relu_forward(x, w, b, 1, 1, True)
        out_r, ctx_r = ref.fused_conv_bias_relu_forward(x, w, b, 1, 1, True)
        assert_bytes_equal(out_f, out_r)
        assert (out_f >= 0).all()
        g = np.random.default_rng(3).standard_normal(out_f.shape)
        if fast.compute_dtype is not None:
            g = g.astype(fast.compute_dtype)
        for gf, gr in zip(
            fast.fused_conv_bias_relu_backward(g, ctx_f),
            ref.fused_conv_bias_relu_backward(g, ctx_r),
        ):
            assert_bytes_equal(gf, gr)

    def test_fused_equals_composed_conv_relu(self):
        # through autograd: one fused tape node == conv2d().relu(), bytes
        # and gradients both
        x, w, b = conv_case(shape=(2, 3, 8, 8), c_out=4)
        for backend in ("reference", "fast"):
            with use_backend(backend):
                xt = Tensor(x, requires_grad=True)
                wt = Tensor(w, requires_grad=True)
                bt = Tensor(b, requires_grad=True)
                fused = conv2d_bias_relu(xt, wt, bt, padding=1)
                fused.sum().backward()
                gx, gw, gb = xt.grad, wt.grad, bt.grad
                xt2 = Tensor(x, requires_grad=True)
                wt2 = Tensor(w, requires_grad=True)
                bt2 = Tensor(b, requires_grad=True)
                composed = conv2d(xt2, wt2, bt2, padding=1).relu()
                composed.sum().backward()
                assert_bytes_equal(fused.data, composed.data)
                assert_bytes_equal(gx, xt2.grad)
                assert_bytes_equal(gw, wt2.grad)
                assert_bytes_equal(gb, bt2.grad)

    @pytest.mark.parametrize("stride,padding,bias", GEOMETRIES[:3])
    def test_f32_twins_byte_equal(self, stride, padding, bias):
        fast, ref = resolve_backend("fast-f32"), resolve_backend("reference-f32")
        x, w, b = conv_case(bias=bias)
        out_f, ctx_f = fast.conv2d_forward(x, w, b, stride, padding, True)
        out_r, ctx_r = ref.conv2d_forward(x, w, b, stride, padding, True)
        assert out_f.dtype == np.float32
        assert_bytes_equal(out_f, out_r)
        g = np.random.default_rng(4).standard_normal(out_f.shape).astype(np.float32)
        for gf, gr in zip(
            fast.conv2d_backward(g, ctx_f), ref.conv2d_backward(g, ctx_r)
        ):
            assert_bytes_equal(gf, gr)

    def test_f32_within_tolerance_of_f64_reference(self):
        f32, f64 = resolve_backend("reference-f32"), resolve_backend("reference")
        x, w, b = conv_case()
        out32, _ = f32.conv2d_forward(x, w, b, 1, 1, False)
        out64, _ = f64.conv2d_forward(x, w, b, 1, 1, False)
        np.testing.assert_allclose(out32, out64, **F32_TOL)


class TestOtherKernelEquivalence:
    @pytest.mark.parametrize("kernel,stride", [(2, 2), (3, 3), (3, 2)])
    def test_maxpool_byte_equal(self, kernel, stride):
        # stride < kernel exercises the overlapping add.at path too
        fast, ref = resolve_backend("fast"), resolve_backend("reference")
        x = RNG.standard_normal((3, 4, 12, 12))
        out_f, arg_f = fast.maxpool_forward(x, kernel, stride)
        out_r, arg_r = ref.maxpool_forward(x, kernel, stride)
        assert_bytes_equal(out_f, out_r)
        assert (arg_f == arg_r).all()
        g = RNG.standard_normal(out_f.shape)
        assert_bytes_equal(
            fast.maxpool_backward(x.shape, arg_f, g, kernel, stride, x.dtype),
            ref.maxpool_backward(x.shape, arg_r, g, kernel, stride, x.dtype),
        )

    def test_linear_byte_equal(self):
        fast, ref = resolve_backend("fast"), resolve_backend("reference")
        x = RNG.standard_normal((9, 7))
        w = RNG.standard_normal((5, 7))
        b = RNG.standard_normal(5)
        out_f, ctx_f = fast.linear_forward(x, w, b, True)
        out_r, ctx_r = ref.linear_forward(x, w, b, True)
        assert_bytes_equal(out_f, out_r)
        g = RNG.standard_normal(out_f.shape)
        for gf, gr in zip(
            fast.linear_backward(g, ctx_f), ref.linear_backward(g, ctx_r)
        ):
            assert_bytes_equal(gf, gr)

    def test_gemm_byte_equal(self):
        fast, ref = resolve_backend("fast"), resolve_backend("reference")
        a = RNG.standard_normal((11, 7))
        b = RNG.standard_normal((7, 13))
        assert_bytes_equal(fast.gemm(a, b), ref.gemm(a, b))

    def test_relu_preserves_negative_zero_bytes(self):
        # backward keeps g * (x > 0): a -0.0 gradient must stay -0.0, as the
        # pre-kernels code produced (np.where would flip the sign bit)
        fast, ref = resolve_backend("fast"), resolve_backend("reference")
        x = np.array([1.0, -1.0, 2.0])
        g = np.array([-0.0, -0.0, 3.0])
        out_f = fast.relu_backward(g, x)
        assert_bytes_equal(out_f, ref.relu_backward(g, x))
        assert np.signbit(out_f[0])

    def test_sgd_update_byte_equal_and_dtype_preserving(self):
        for name in ("fast", "fast-f32"):
            kb, ref = resolve_backend(name), resolve_backend("reference")
            p1 = RNG.standard_normal(10)
            p2 = p1.copy()
            grad = RNG.standard_normal(10)
            v1 = kb.sgd_update(p1, grad, None, 0.1, 0.9, True, 1e-4)
            v2 = ref.sgd_update(p2, grad, None, 0.1, 0.9, True, 1e-4)
            # optimizer state stays in the parameter dtype even under f32 mode
            assert p1.dtype == v1.dtype == np.float64
            assert_bytes_equal(p1, p2)
            assert_bytes_equal(v1, v2)


# --------------------------------------------------------------------------
# gradcheck on both backends
# --------------------------------------------------------------------------

TOL = dict(eps=1e-5, atol=1e-5, rtol=1e-4)


def T(shape, scale=1.0, seed=0):
    return Tensor(
        np.random.default_rng(seed).normal(size=shape) * scale,
        requires_grad=True,
    )


@pytest.mark.parametrize("backend", ["reference", "fast"])
class TestGradcheckBothBackends:
    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 0)])
    def test_conv2d(self, backend, stride, padding):
        with use_backend(backend):
            gradcheck(
                lambda x, w, b: conv2d(
                    x, w, b, stride=stride, padding=padding
                ).sum(),
                [T((2, 3, 6, 6)), T((4, 3, 3, 3), 0.5, 1), T((4,), 0.1, 2)],
                **TOL,
            )

    def test_fused_conv_bias_relu(self, backend):
        with use_backend(backend):
            gradcheck(
                lambda x, w, b: conv2d_bias_relu(x, w, b, padding=1).sum(),
                [T((2, 3, 6, 6)), T((4, 3, 3, 3), 0.5, 1), T((4,), 0.1, 2)],
                **TOL,
            )

    def test_maxpool(self, backend):
        # margin between window values keeps the finite-difference stencil
        # away from argmax ties
        rng = np.random.default_rng(5)
        x = Tensor(
            rng.permutation(64).reshape(1, 4, 4, 4) * 0.1, requires_grad=True
        )
        with use_backend(backend):
            gradcheck(lambda x: max_pool2d(x, 2, 2).sum(), [x], **TOL)

    def test_linear(self, backend):
        with use_backend(backend):
            gradcheck(
                lambda x, w, b: linear(x, w, b).sum(),
                [T((5, 4)), T((3, 4), 0.5, 1), T((3,), 0.1, 2)],
                **TOL,
            )

    def test_relu(self, backend):
        # keep activations away from the kink
        x = Tensor(
            np.random.default_rng(6).normal(size=(4, 4)) + 3.0,
            requires_grad=True,
        )
        with use_backend(backend):
            gradcheck(lambda x: x.relu().sum(), [x], **TOL)


# --------------------------------------------------------------------------
# float32-throughout mode
# --------------------------------------------------------------------------

class TestFloat32Mode:
    def _train_step(self, backend):
        from repro import nn
        from repro.optim import SGD

        rng = np.random.default_rng(0)
        with use_backend(backend):
            model = nn.Sequential(
                nn.Conv2d(3, 4, 3, padding=1, rng=rng, activation="relu"),
                nn.MaxPool2d(2),
                nn.Flatten(),
                nn.Linear(4 * 4 * 4, 5, rng=rng),
            )
            model.train()
            opt = SGD(list(model.parameters()), lr=0.01, momentum=0.9)
            param_dtypes = [p.data.dtype for p in model.parameters()]
            xb = rng.standard_normal((8, 3, 8, 8))
            out = model(Tensor(xb))
            loss = cross_entropy(out, rng.integers(0, 5, 8))
            model.zero_grad()
            loss.backward()
            opt.step()
        return model, out, loss, param_dtypes

    def test_f32_dtype_propagates_through_train_step(self):
        model, out, loss, param_dtypes = self._train_step("fast-f32")
        # activations run in float32...
        assert out.data.dtype == np.float32
        # ...while every parameter keeps its own dtype (weights are float32
        # by init, biases float64) — gradient accumulation casts grads back
        # to the parameter dtype, and sgd_update never recasts
        for p, dtype in zip(model.parameters(), param_dtypes):
            assert p.data.dtype == dtype
            assert p.grad is None or p.grad.dtype == dtype
        assert np.isfinite(loss.data)

    def test_f64_train_step_unaffected(self):
        _, out, _, _ = self._train_step("fast")
        assert out.data.dtype == np.float64

    def test_f32_and_f64_training_agree_to_tolerance(self):
        _, out32, loss32, _ = self._train_step("fast-f32")
        _, out64, loss64, _ = self._train_step("reference")
        np.testing.assert_allclose(
            out32.data, out64.data, rtol=1e-3, atol=1e-4
        )
        np.testing.assert_allclose(
            float(loss32.data), float(loss64.data), rtol=1e-3
        )


# --------------------------------------------------------------------------
# propagation: executors, queue workers, result metadata, cache round-trip
# --------------------------------------------------------------------------

class TestBackendPropagation:
    def test_executor_rejects_unknown_backend_eagerly(self):
        from repro.experiment import SerialExecutor

        with pytest.raises(KeyError):
            SerialExecutor(kernel_backend="not-a-backend")

    def test_serial_executor_tags_rows_with_backend(self, tmp_path):
        import exp_fixtures  # registers the crashy dataset
        from repro.experiment import SerialExecutor
        from repro.experiment.cache import ResultCache

        spec = exp_fixtures.crashy_spec(cell="kb-serial")
        rows = SerialExecutor(
            cache=ResultCache(tmp_path / "c"), kernel_backend="fast"
        ).run([spec])
        assert rows[0].extra["kernel_backend"] == "fast"

    def test_default_executor_records_ambient_backend(self, tmp_path):
        import exp_fixtures
        from repro.experiment import SerialExecutor
        from repro.experiment.cache import ResultCache

        spec = exp_fixtures.crashy_spec(cell="kb-default")
        rows = SerialExecutor(cache=ResultCache(tmp_path / "c")).run([spec])
        assert rows[0].extra["kernel_backend"] == "reference"

    def test_queue_persists_backend_for_remote_workers(self, tmp_path):
        import exp_fixtures
        from repro.experiment.queue import QueueWorker, WorkQueue
        from repro.experiment.cache import ResultCache

        queue = WorkQueue(tmp_path / "q", kernel_backend="fast")
        stored = json.loads((tmp_path / "q" / "queue.json").read_text())
        assert stored["kernel_backend"] == "fast"
        # a worker attaching from another machine sees only the directory
        adopted = WorkQueue(tmp_path / "q")
        assert adopted.kernel_backend == "fast"
        worker = QueueWorker(adopted, ResultCache(tmp_path / "q" / "cache"))
        assert worker.kernel_backend == "fast"

    def test_queue_worker_executes_under_stored_backend(self, tmp_path):
        import exp_fixtures
        from repro.experiment.queue import QueueWorker, WorkQueue
        from repro.experiment.cache import ResultCache

        queue = WorkQueue(tmp_path / "q", kernel_backend="fast")
        spec = exp_fixtures.crashy_spec(cell="kb-queue")
        queue.submit(spec)
        cache = ResultCache(tmp_path / "q" / "cache")
        QueueWorker(queue, cache).run(max_cells=1, idle_timeout=0.0)
        row = cache.get(spec)
        assert row is not None
        assert row.extra["kernel_backend"] == "fast"

    def test_cache_round_trip_preserves_backend_tag(self, tmp_path):
        import exp_fixtures
        from repro.experiment.cache import ResultCache
        from repro.experiment.results import PruningResult

        spec = exp_fixtures.crashy_spec(cell="kb-cache")
        row = PruningResult(
            model=spec.model, dataset=spec.dataset, strategy=spec.strategy,
            compression=spec.compression, seed=spec.seed,
            extra={"kernel_backend": "fast-f32"},
        )
        cache = ResultCache(tmp_path / "c")
        cache.put(spec, row)
        assert cache.get(spec).extra["kernel_backend"] == "fast-f32"

    def test_report_surfaces_backends(self):
        from repro.analysis import build_report, render_report
        from repro.analysis.frame import ResultFrame
        from repro.experiment.results import PruningResult

        rows = [
            PruningResult(
                model="m", dataset="d", strategy="global_weight",
                compression=2.0, seed=i, top1=0.5, top5=0.9,
                baseline_top1=0.6, baseline_top5=0.95,
                actual_compression=2.0, theoretical_speedup=1.5,
                extra={"kernel_backend": backend},
            )
            for i, backend in enumerate(["reference", "fast"])
        ]
        report = build_report(ResultFrame.from_results(rows))
        assert report.kernel_backends == ["fast", "reference"]
        text = render_report(report)
        assert "kernel backends: fast, reference" in text
        assert "mixed" in text
