"""Tests for the pretrained-checkpoint cache (models.pretrained)."""

import numpy as np
import pytest

from repro.experiment import OptimizerConfig, TrainConfig
from repro.models import create_model
from repro.models.pretrained import (
    get_pretrained_state,
    load_checkpoint,
    pretrained_key,
    save_checkpoint,
)


def _cfg():
    return TrainConfig(epochs=1, batch_size=16,
                       optimizer=OptimizerConfig("adam", 1e-3),
                       early_stop_patience=None)


class TestKeying:
    def test_key_stable(self):
        a = pretrained_key("m", {"w": 1}, "d", {"n": 2}, _cfg().to_dict(), 0)
        b = pretrained_key("m", {"w": 1}, "d", {"n": 2}, _cfg().to_dict(), 0)
        assert a == b

    def test_key_sensitive_to_every_field(self):
        base = pretrained_key("m", {}, "d", {}, _cfg().to_dict(), 0)
        assert pretrained_key("m2", {}, "d", {}, _cfg().to_dict(), 0) != base
        assert pretrained_key("m", {"w": 2}, "d", {}, _cfg().to_dict(), 0) != base
        assert pretrained_key("m", {}, "d2", {}, _cfg().to_dict(), 0) != base
        assert pretrained_key("m", {}, "d", {"n": 1}, _cfg().to_dict(), 0) != base
        assert pretrained_key("m", {}, "d", {}, _cfg().to_dict(), 1) != base

    def test_lr_changes_key(self):
        """Figure 8 depends on this: Weights A (lr 1e-3) and Weights B
        (lr 1e-4) must map to distinct checkpoints."""
        cfg_a = TrainConfig(optimizer=OptimizerConfig("adam", 1e-3)).to_dict()
        cfg_b = TrainConfig(optimizer=OptimizerConfig("adam", 1e-4)).to_dict()
        assert (pretrained_key("m", {}, "d", {}, cfg_a, 0)
                != pretrained_key("m", {}, "d", {}, cfg_b, 0))


class TestStore:
    def test_save_load_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        m = create_model("lenet-300-100", input_size=8, in_channels=1)
        state = m.state_dict()
        save_checkpoint("unittest-key", state, meta={"note": "x"})
        loaded = load_checkpoint("unittest-key")
        assert set(loaded) == set(state)
        np.testing.assert_array_equal(loaded["fc1.weight"], state["fc1.weight"])

    def test_load_missing_returns_none(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        assert load_checkpoint("no-such-key") is None

    def test_get_pretrained_trains_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        calls = []

        def factory():
            calls.append(1)
            m = create_model("lenet-300-100", input_size=8, in_channels=1)
            return m, [{"val_top1": 0.5}]

        args = ("m", {}, "d", {}, _cfg(), 0, factory)
        state1, key1 = get_pretrained_state(*args)
        state2, key2 = get_pretrained_state(*args)
        assert key1 == key2
        assert len(calls) == 1  # second call is a cache hit
        np.testing.assert_array_equal(state1["fc1.weight"], state2["fc1.weight"])
