"""Fault-injection tests for the durable work-queue executor.

Fast tests exercise the queue protocol (atomic claims, leases, retries,
quarantine) and the in-process executor/worker loop on crashy micro-cells;
the multi-process versions — real ``python -m repro worker`` subprocesses,
one of them killed mid-run — are marked ``slow`` (run with ``-m slow``).
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from exp_fixtures import CrashyError, crashy_grid, crashy_spec, tiny_train
from repro.experiment import (
    ParallelExecutor,
    QueueExecutor,
    QueueWorker,
    ResultCache,
    ResultSet,
    SerialExecutor,
    SweepConfig,
    WorkQueue,
    assemble_results,
    baseline_spec_for,
    spec_hash,
)

REPO = Path(__file__).resolve().parent.parent


def _backdate(path: Path, seconds: float) -> None:
    past = time.time() - seconds
    os.utime(path, (past, past))


class TestWorkQueue:
    """Queue protocol mechanics — no experiment ever executes here."""

    def _specs(self, n=3):
        return [crashy_spec(cell=f"q{i}") for i in range(n)]

    def test_submit_claim_complete_lifecycle(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        spec = self._specs(1)[0]
        h = queue.submit(spec)
        assert h == spec_hash(spec)
        assert queue.state(h) == "pending"
        claim = queue.claim("w1")
        assert claim.hash == h and claim.attempt == 1 and claim.worker == "w1"
        assert queue.state(h) == "leased"
        assert queue.lease_info(h)["worker"] == "w1"
        # the spec travels with the cell, losslessly
        from repro.experiment import ExperimentSpec

        assert spec_hash(ExperimentSpec.from_dict(claim.spec)) == h
        queue.complete(claim, elapsed=0.5)
        assert queue.state(h) == "done"
        assert queue.payload(h)["worker"] == "w1"
        assert queue.counts() == {"pending": 0, "leased": 0, "done": 1, "failed": 0}

    def test_submit_idempotent(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        spec = self._specs(1)[0]
        assert queue.submit(spec) == queue.submit(spec)
        assert queue.counts()["pending"] == 1
        claim = queue.claim("w1")
        queue.submit(spec)  # leased: still not duplicated
        assert queue.counts()["pending"] == 0
        queue.complete(claim)
        queue.submit(spec)  # done: stays done
        assert queue.state(claim.hash) == "done"

    def test_claim_exhausts_then_none(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        specs = self._specs(3)
        for s in specs:
            queue.submit(s)
        claimed = {queue.claim("w").hash for _ in range(3)}
        assert claimed == {spec_hash(s) for s in specs}
        assert queue.claim("w") is None

    def test_racing_workers_never_double_claim(self, tmp_path):
        """The ISSUE's race criterion: two (here four) workers hammering one
        queue claim every cell exactly once — rename is the arbiter."""
        queue = WorkQueue(tmp_path / "q")
        specs = [crashy_spec(cell=f"race{i}") for i in range(12)]
        for s in specs:
            queue.submit(s)
        claimed = []
        lock = threading.Lock()

        def grab(worker):
            while True:
                claim = queue.claim(worker)
                if claim is None:
                    return
                with lock:
                    claimed.append(claim.hash)

        threads = [
            threading.Thread(target=grab, args=(f"w{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(claimed) == sorted(spec_hash(s) for s in specs)
        assert len(set(claimed)) == len(specs)  # no hash claimed twice

    def test_fail_requeues_then_quarantines(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", max_retries=1)
        spec = self._specs(1)[0]
        h = queue.submit(spec)
        claim = queue.claim("w1")
        assert queue.fail(claim, "boom 1") == "pending"  # retry budget left
        assert queue.state(h) == "pending"
        claim = queue.claim("w2")
        assert claim.attempt == 2
        assert queue.fail(claim, "boom 2") == "failed"  # budget exhausted
        assert queue.state(h) == "failed"
        payload = queue.payload(h)
        assert payload["attempts"] == 2
        assert [f["error"] for f in payload["failures"]] == ["boom 1", "boom 2"]
        assert [f["worker"] for f in payload["failures"]] == ["w1", "w2"]
        assert queue.claim("w3") is None  # quarantined cells are not retried

    def test_expired_lease_recovered_and_counted(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_timeout=5.0)
        h = queue.submit(self._specs(1)[0])
        queue.claim("dead-worker")
        assert queue.requeue_expired() == []  # lease still fresh
        _backdate(queue._lease_path(h), 60)
        assert queue.requeue_expired() == [(h, "pending")]
        payload = queue.payload(h)
        assert payload["attempts"] == 1
        assert "lease expired" in payload["failures"][0]["error"]
        assert "dead-worker" in payload["failures"][0]["error"]
        assert queue.claim("w2").attempt == 2  # recovered cell is claimable

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_timeout=5.0)
        h = queue.submit(self._specs(1)[0])
        claim = queue.claim("w1")
        _backdate(queue._lease_path(h), 60)
        queue.heartbeat(claim)  # the beat refreshes the stale mtime
        assert queue.requeue_expired() == []
        assert queue.state(h) == "leased"

    def test_expiry_quarantines_once_budget_is_burned(self, tmp_path):
        """A cell that crashes its worker every time must not loop forever."""
        queue = WorkQueue(tmp_path / "q", lease_timeout=1.0, max_retries=1)
        h = queue.submit(self._specs(1)[0])
        states = []
        for _ in range(2):
            queue.claim("crashloop")
            _backdate(queue._lease_path(h), 60)
            states.extend(s for _, s in queue.requeue_expired())
        assert states == ["pending", "failed"]
        assert queue.state(h) == "failed"

    def test_stale_complete_after_steal_is_harmless(self, tmp_path):
        """Worker presumed dead finishes anyway: its (deterministic) result
        is recorded and the re-queued copy is withdrawn."""
        queue = WorkQueue(tmp_path / "q", lease_timeout=1.0)
        h = queue.submit(self._specs(1)[0])
        zombie = queue.claim("zombie")
        _backdate(queue._lease_path(h), 60)
        queue.requeue_expired()
        assert queue.state(h) == "pending"
        zombie_late = zombie  # the zombie wakes up and reports
        queue.complete(zombie_late)
        assert queue.state(h) == "done"
        assert queue.claim("w2") is None  # nothing left to run twice

    def test_stale_fail_after_steal_does_not_clobber(self, tmp_path):
        """Zombie worker raises after its lease expired and the cell was
        re-claimed: its late fail() must not roll the retry counter back,
        spawn a duplicate pending copy, or delete the new owner's lease."""
        queue = WorkQueue(tmp_path / "q", lease_timeout=1.0, max_retries=5)
        h = queue.submit(self._specs(1)[0])
        zombie = queue.claim("zombie")
        _backdate(queue._lease_path(h), 60)
        queue.requeue_expired()  # logs the zombie's attempt as failure #1
        second = queue.claim("w2")
        assert second.attempt == 2
        assert queue.fail(zombie, "late raise") == "leased"  # no-op report
        assert queue.state(h) == "leased"
        assert queue.lease_info(h)["worker"] == "w2"  # lease untouched
        assert queue.payload(h)["attempts"] == 1  # budget not rolled back
        queue.complete(second)
        assert queue.state(h) == "done"

    def test_stale_fail_after_requeue_does_not_duplicate(self, tmp_path):
        """Same, but nobody has re-claimed yet: the expiry sweep already
        logged this attempt, so the zombie's report must not double-log."""
        queue = WorkQueue(tmp_path / "q", lease_timeout=1.0, max_retries=5)
        h = queue.submit(self._specs(1)[0])
        zombie = queue.claim("zombie")
        _backdate(queue._lease_path(h), 60)
        queue.requeue_expired()
        assert queue.fail(zombie, "late raise") == "pending"
        payload = queue.payload(h)
        assert payload["attempts"] == 1
        assert len(payload["failures"]) == 1  # only the expiry record

    def test_fail_after_competitor_finished_stays_done(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_timeout=1.0, max_retries=1)
        h = queue.submit(self._specs(1)[0])
        first = queue.claim("w1")
        _backdate(queue._lease_path(h), 60)
        queue.requeue_expired()
        second = queue.claim("w2")
        queue.complete(second)
        assert queue.fail(first, "late failure") == "done"
        assert queue.state(h) == "done"

    def test_settings_persist_in_queue_json(self, tmp_path):
        WorkQueue(tmp_path / "q", lease_timeout=7.5, max_retries=9)
        reopened = WorkQueue(tmp_path / "q")  # bare path, as workers do
        assert reopened.lease_timeout == 7.5
        assert reopened.max_retries == 9
        explicit = WorkQueue(tmp_path / "q", lease_timeout=1.0)
        assert explicit.lease_timeout == 1.0  # explicit args win locally
        assert explicit.max_retries == 9

    def test_resubmitting_quarantined_cell_resets_budget(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", max_retries=0)
        spec = self._specs(1)[0]
        h = queue.submit(spec)
        queue.fail(queue.claim("w1"), "boom")
        assert queue.state(h) == "failed"
        queue.submit(spec)  # a new sweep gives the cell a fresh chance
        assert queue.state(h) == "pending"
        payload = queue.payload(h)
        assert payload["attempts"] == 0
        assert len(payload["failures"]) == 1  # audit trail survives

    def test_crash_before_lease_sidecar_still_recovered(self, tmp_path):
        """A worker killed between the claim rename and the .lease write
        leaves a bare leased payload; expiry recovery must still move it."""
        queue = WorkQueue(tmp_path / "q", lease_timeout=5.0)
        spec = self._specs(1)[0]
        h = queue.submit(spec)
        # simulate the crash window: rename lands, sidecar never does
        os.rename(queue.pending_dir / f"{h}.json", queue.leased_dir / f"{h}.json")
        _backdate(queue.leased_dir / f"{h}.json", 60)
        assert queue.requeue_expired() == [(h, "pending")]
        payload = queue.payload(h)
        assert payload["attempts"] == 1
        assert "lease expired" in payload["failures"][0]["error"]
        assert queue.claim("w2").attempt == 2

    def test_concurrent_expiry_sweeps_count_one_attempt(self, tmp_path):
        """Racing recoverers (submitter poll + worker run_once) must record
        an expiry exactly once — rename arbitration, same as claims."""
        queue = WorkQueue(tmp_path / "q", lease_timeout=1.0, max_retries=5)
        h = queue.submit(self._specs(1)[0])
        queue.claim("dead")
        _backdate(queue._lease_path(h), 60)
        results = []
        lock = threading.Lock()

        def sweep():
            got = queue.requeue_expired()
            with lock:
                results.extend(got)

        threads = [threading.Thread(target=sweep) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [(h, "pending")]  # exactly one recovery happened
        assert queue.payload(h)["attempts"] == 1
        assert len(queue.payload(h)["failures"]) == 1

    def test_invalid_settings_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WorkQueue(tmp_path / "a", lease_timeout=0)
        with pytest.raises(ValueError):
            WorkQueue(tmp_path / "b", max_retries=-1)


class TestWorkQueueStats:
    """``stats()`` edge cases: the dashboard must describe a sick queue
    without touching it (no recovery, no crash)."""

    def test_expired_but_unrecovered_lease_is_reported_not_recovered(
            self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_timeout=5.0)
        h = queue.submit(crashy_spec(cell="stats-exp"))
        queue.claim("dead-worker")
        _backdate(queue._lease_path(h), 60)
        stats = queue.stats()
        assert stats["leases"] == [
            {"hash": h, "worker": "dead-worker",
             "age": pytest.approx(60, abs=5), "expired": True},
        ]
        assert stats["workers"][0]["expired"] is True
        # stats is read-only: the cell is still leased afterwards
        assert queue.state(h) == "leased"
        assert queue.counts()["leased"] == 1

    def test_future_heartbeat_clamps_to_fresh_not_negative(self, tmp_path):
        """Clock skew on a shared filesystem can put a worker's beat mtime
        ahead of our clock; that must read as a fresh lease, not a
        negative age (and certainly not an expired one)."""
        queue = WorkQueue(tmp_path / "q", lease_timeout=5.0)
        h = queue.submit(crashy_spec(cell="stats-skew"))
        queue.claim("skewed-worker")
        future = time.time() + 120
        os.utime(queue._lease_path(h), (future, future))
        lease = queue.stats()["leases"][0]
        assert lease["age"] == 0.0
        assert lease["expired"] is False
        worker = queue.stats()["workers"][0]
        assert worker["freshest_beat"] == 0.0 and not worker["expired"]

    def test_per_worker_rollup_aggregates_leases(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_timeout=30.0)
        hashes = [queue.submit(crashy_spec(cell=f"roll{i}"))
                  for i in range(3)]
        queue.claim("w-a")
        queue.claim("w-a")
        queue.claim("w-b")
        _backdate(queue._lease_path(hashes[0]), 10)
        stats = queue.stats()
        by_worker = {row["worker"]: row for row in stats["workers"]}
        assert set(by_worker) == {"w-a", "w-b"}
        assert by_worker["w-a"]["cells"] == 2
        # freshest beat wins the rollup: one stale lease doesn't age w-a
        assert by_worker["w-a"]["freshest_beat"] == pytest.approx(0, abs=2)
        assert by_worker["w-b"]["cells"] == 1

    def test_stats_tolerates_mid_recovery_and_sidecar_gaps(self, tmp_path):
        """A `.recovering` rename in flight and a lease payload whose
        sidecar never landed (claim-then-crash) must not crash stats —
        the gap cell falls back to the payload mtime."""
        queue = WorkQueue(tmp_path / "q", lease_timeout=5.0)
        specs = [crashy_spec(cell=f"mid{i}") for i in range(2)]
        gap, racing = [queue.submit(s) for s in specs]
        # claim-then-crash: payload renamed into leased/, no .lease sidecar
        os.rename(queue.pending_dir / f"{gap}.json",
                  queue.leased_dir / f"{gap}.json")
        _backdate(queue.leased_dir / f"{gap}.json", 60)
        # another recoverer mid-sweep: non-.json intermediate in leased/
        (queue.leased_dir / f"{racing}.recovering").write_text("{}")
        stats = queue.stats()
        assert [lease["hash"] for lease in stats["leases"]] == [gap]
        assert stats["leases"][0]["expired"] is True
        assert stats["leases"][0]["worker"] == "unknown"

    def test_stats_tolerates_malformed_failure_entries(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", max_retries=0)
        h = queue.submit(crashy_spec(cell="mangled"))
        queue.fail(queue.claim("w1"), "boom")
        # hand-edit the quarantine record into legacy/mangled shapes
        path = queue.failed_dir / f"{h}.json"
        payload = json.loads(path.read_text())
        payload["failures"] = ["a bare string", {"no_error_key": 1}]
        path.write_text(json.dumps(payload))
        row = queue.stats()["failed"][0]
        assert row["hash"] == h and row["error"] == ""

    def test_legacy_queue_json_missing_settings_warns_and_defaults(
            self, tmp_path):
        """Older queue layouts lack settings keys (or hold null); opening
        one must warn and default, not KeyError/TypeError."""
        queue_dir = tmp_path / "q"
        WorkQueue(queue_dir).submit(crashy_spec(cell="legacy"))
        (queue_dir / "queue.json").write_text(json.dumps({"schema": 1}))
        with pytest.warns(RuntimeWarning, match="missing or has invalid"):
            reopened = WorkQueue(queue_dir)
        from repro.experiment.queue import (
            DEFAULT_LEASE_TIMEOUT,
            DEFAULT_MAX_RETRIES,
        )

        assert reopened.lease_timeout == DEFAULT_LEASE_TIMEOUT
        assert reopened.max_retries == DEFAULT_MAX_RETRIES
        assert reopened.counts()["pending"] == 1  # cells intact

    def test_legacy_queue_json_null_settings_warn_and_default(self, tmp_path):
        queue_dir = tmp_path / "q"
        WorkQueue(queue_dir)
        (queue_dir / "queue.json").write_text(json.dumps({
            "schema": 1, "lease_timeout": None, "max_retries": None,
        }))
        with pytest.warns(RuntimeWarning):
            reopened = WorkQueue(queue_dir)
        from repro.experiment.queue import DEFAULT_LEASE_TIMEOUT

        assert reopened.lease_timeout == DEFAULT_LEASE_TIMEOUT
        # explicit arguments still win over the defaults
        with pytest.warns(RuntimeWarning):
            explicit = WorkQueue(queue_dir, lease_timeout=7.0)
        assert explicit.lease_timeout == 7.0

    def test_queue_stats_cli_survives_legacy_queue_json(self, tmp_path,
                                                        capsys):
        from repro.cli import main

        queue_dir = tmp_path / "q"
        WorkQueue(queue_dir).submit(crashy_spec(cell="legacy-cli"))
        (queue_dir / "queue.json").write_text(json.dumps({"schema": 1}))
        with pytest.warns(RuntimeWarning):
            assert main(["queue", "stats", str(queue_dir)]) == 0
        out = capsys.readouterr().out
        assert "pending" in out


class TestQueueWorker:
    def test_worker_publishes_row_and_baseline_before_done(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        cache = ResultCache(tmp_path / "cache")
        spec = crashy_spec(cell="ok0")
        queue.submit(spec)
        worker = QueueWorker(queue, cache, worker_id="w1")
        assert worker.run_once() is True
        assert queue.state(spec_hash(spec)) == "done"
        row = cache.get(spec)
        assert row is not None and row.compression == 2.0
        # the free synthesized unpruned-control row landed too
        assert cache.contains(baseline_spec_for(spec))
        assert worker.run_once() is False  # queue drained

    def test_failed_cell_records_full_traceback(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", max_retries=0)
        cache = ResultCache(tmp_path / "cache")
        spec = crashy_spec(cell="boom", behavior="raise")
        h = queue.submit(spec)
        QueueWorker(queue, cache, worker_id="w1").run_once()
        assert queue.state(h) == "failed"
        error = queue.payload(h)["failures"][0]["error"]
        assert "CrashyError" in error
        assert "injected failure in cell 'boom'" in error
        assert "Traceback" in error  # a real traceback, not just str(exc)
        assert cache.get(spec) is None  # nothing half-published

    def test_flaky_cell_retries_until_success(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", max_retries=2)
        cache = ResultCache(tmp_path / "cache")
        spec = crashy_spec(
            cell="flaky0", behavior="flaky", fail_times=2,
            scratch=str(tmp_path / "scratch"),
        )
        h = queue.submit(spec)
        worker = QueueWorker(queue, cache, worker_id="w1")
        worker.run(idle_timeout=0.0, poll_interval=0.01)
        assert queue.state(h) == "done"
        payload = queue.payload(h)
        assert payload["attempts"] == 3  # 2 injected failures + 1 success
        assert len(payload["failures"]) == 2
        assert cache.get(spec) is not None

    def test_abandoned_lease_is_finished_by_another_worker(self, tmp_path):
        """Crash mid-cell → lease expires → another worker finishes it."""
        queue = WorkQueue(tmp_path / "q", lease_timeout=5.0)
        cache = ResultCache(tmp_path / "cache")
        spec = crashy_spec(cell="orphan")
        h = queue.submit(spec)
        queue.claim("w-crashed")  # claims, then "dies" without reporting
        _backdate(queue._lease_path(h), 60)
        rescuer = QueueWorker(queue, cache, worker_id="w-rescue")
        assert rescuer.run_once() is True  # recovers the lease AND runs it
        assert queue.state(h) == "done"
        payload = queue.payload(h)
        assert payload["worker"] == "w-rescue"
        assert "lease expired" in payload["failures"][0]["error"]
        assert cache.get(spec) is not None


class TestQueueExecutor:
    def _run_queue(self, specs, tmp_path, name, workers=1, **kwargs):
        events = []
        executor = QueueExecutor(
            workers=workers,
            cache=ResultCache(tmp_path / name / "cache"),
            on_event=events.append,
            queue_dir=tmp_path / name / "q",
            wait_timeout=120,
            **kwargs,
        )
        return executor.run(specs), events

    def test_queue_matches_serial_with_1_and_2_workers(self, tmp_path):
        """Equivalence satellite: byte-identical tables (same spec hashes,
        same metric values) out of serial, 1-worker, and 2-worker queues."""
        specs = crashy_grid(("global_weight", "random"), (1, 2), (0,))
        serial_rows = SerialExecutor(cache=ResultCache(tmp_path / "s")).run(specs)
        one_rows, _ = self._run_queue(specs, tmp_path, "one", workers=1)
        two_rows, _ = self._run_queue(specs, tmp_path, "two", workers=2)
        reference = [r.to_dict() for r in serial_rows]
        assert [r.to_dict() for r in one_rows] == reference
        assert [r.to_dict() for r in two_rows] == reference
        # and the assembled tables are byte-identical as serialized JSON
        strategies = ["global_weight", "random"]
        blobs = {
            json.dumps(
                [r.to_dict() for r in assemble_results(specs, rows, strategies)],
                sort_keys=True,
            )
            for rows in (serial_rows, one_rows, two_rows)
        }
        assert len(blobs) == 1

    def test_second_run_completes_from_cache_hits(self, tmp_path):
        specs = crashy_grid(("global_weight",), (1, 2), (0,))
        first, _ = self._run_queue(specs, tmp_path, "qq")
        again, events = self._run_queue(specs, tmp_path, "qq")
        assert [r.to_dict() for r in again] == [r.to_dict() for r in first]
        assert {e.kind for e in events} == {"cache-hit"}

    def test_poison_cell_quarantined_not_hanging(self, tmp_path):
        """Retry budget exhausted → quarantined and *surfaced* in the rows,
        while healthy cells complete normally."""
        good = crashy_spec(cell="good1")
        bad = crashy_spec(cell="bad1", behavior="raise")
        rows, events = self._run_queue(
            [good, bad], tmp_path, "poison", workers=1, max_retries=1,
        )
        assert rows[0].top1 == pytest.approx(
            SerialExecutor().run([good])[0].top1
        )
        assert rows[1].extra["failed"] is True
        assert rows[1].extra["attempts"] == 2  # 1 run + 1 retry
        assert "CrashyError" in rows[1].extra["error"]
        assert (rows[1].strategy, rows[1].compression, rows[1].seed) == (
            bad.strategy, bad.compression, bad.seed
        )
        failed_events = [e for e in events if e.kind == "failed"]
        assert len(failed_events) == 1
        assert "CrashyError" in failed_events[0].failure
        # the sweep still counted every cell exactly once
        assert max(e.done for e in events) == 2

    def test_flaky_cell_heals_within_budget(self, tmp_path):
        spec = crashy_spec(
            cell="flaky-exec", behavior="flaky", fail_times=1,
            scratch=str(tmp_path / "scratch"),
        )
        rows, events = self._run_queue(
            [spec], tmp_path, "flaky", workers=1, max_retries=2,
        )
        assert "failed" not in {e.kind for e in events}
        assert not rows[0].extra.get("failed")
        assert rows[0].to_dict() == SerialExecutor().run([spec])[0].to_dict()

    def test_pure_coordinator_times_out_without_workers(self, tmp_path):
        spec = crashy_spec(cell="nobody")
        with pytest.raises(TimeoutError, match="unfinished"):
            QueueExecutor(
                cache=ResultCache(tmp_path / "cache"),
                queue_dir=tmp_path / "q",
                local_workers=0,
                wait_timeout=0.3,
                poll_interval=0.01,
            ).run([spec])
        # ... but the cell is durably queued for whenever a worker shows up
        assert WorkQueue(tmp_path / "q").state(spec_hash(spec)) == "pending"

    def test_coordinator_assembles_results_from_external_worker(self, tmp_path):
        """Split-brain flow in-process: a pure coordinator submits while an
        'external' worker thread drains the shared directory."""
        specs = crashy_grid(("global_weight",), (1, 2), (0,))
        queue_dir = tmp_path / "q"
        cache = ResultCache(tmp_path / "shared-cache")
        stop = threading.Event()

        def external_worker():
            queue = WorkQueue(queue_dir)
            QueueWorker(queue, cache, worker_id="external").run(
                stop=stop, poll_interval=0.01
            )

        thread = threading.Thread(target=external_worker, daemon=True)
        executor = QueueExecutor(
            cache=cache, queue_dir=queue_dir, local_workers=0,
            wait_timeout=120, poll_interval=0.01,
        )
        thread.start()
        try:
            rows = executor.run(specs)
        finally:
            stop.set()
            thread.join(timeout=10)
        reference = SerialExecutor().run(specs)
        assert [r.to_dict() for r in rows] == [r.to_dict() for r in reference]

    def test_missing_queue_dir_rejected(self):
        with pytest.raises(ValueError, match="queue directory"):
            QueueExecutor(workers=1)

    def test_cleared_cache_with_stale_done_markers_reexecutes(self, tmp_path):
        """The documented force-re-execution path: clear <queue-dir>/cache
        and re-run.  Stale done markers must be reset and the cells re-run,
        not crash the sweep."""
        specs = crashy_grid(("global_weight",), (1, 2), (0,))
        first, _ = self._run_queue(specs, tmp_path, "redo")
        cache = ResultCache(tmp_path / "redo" / "cache")
        assert cache.clear() > 0
        again, events = self._run_queue(specs, tmp_path, "redo")
        assert [r.to_dict() for r in again] == [r.to_dict() for r in first]
        assert "cache-hit" not in {e.kind for e in events}  # really re-ran
        assert WorkQueue(tmp_path / "redo" / "q").counts()["done"] == len(specs)


class TestExecutorFailureEvents:
    """Satellite: a raising cell's traceback reaches the event stream."""

    def test_serial_failed_event_carries_traceback(self, tmp_path):
        good = crashy_spec(cell="ev-good")
        bad = crashy_spec(cell="ev-bad", behavior="raise")
        events = []
        messages = []
        with pytest.raises(CrashyError):
            SerialExecutor(
                cache=ResultCache(tmp_path / "c"),
                progress=messages.append,
                on_event=events.append,
            ).run([good, bad])
        failed = [e for e in events if e.kind == "failed"]
        assert len(failed) == 1
        assert "CrashyError" in failed[0].failure
        assert "injected failure in cell 'ev-bad'" in failed[0].failure
        assert "Traceback" in failed[0].failure
        assert any(m.endswith("[failed]") for m in messages)
        # non-failure events carry no failure payload
        assert all(e.failure is None for e in events if e.kind != "failed")


class TestQueueCLIFailureSurface:
    """CLI behaviors that need the crashy dataset registered in-process."""

    def test_run_exits_nonzero_on_quarantined_cells(self, tmp_path, capsys):
        from repro.cli import main

        spec = crashy_spec(cell="cli-poison", behavior="raise")
        config = SweepConfig(
            model=spec.model,
            dataset=spec.dataset,
            strategies=(spec.strategy,),
            compressions=(spec.compression,),
            seeds=(spec.seed,),
            model_kwargs=dict(spec.model_kwargs),
            dataset_kwargs=dict(spec.dataset_kwargs),
            pretrain=spec.pretrain,
            finetune=spec.finetune,
            executor="queue",
            executor_options=dict(
                queue_dir=str(tmp_path / "q"), max_retries=0, wait_timeout=60,
            ),
        )
        path = config.save(tmp_path / "poison.json")
        out = tmp_path / "rows.json"
        assert main(["run", str(path), "--out", str(out)]) == 1
        captured = capsys.readouterr()
        assert "quarantined cell(s)" in captured.err
        assert "[FAILED]" in captured.out  # the progress stream said why
        assert "CrashyError" in captured.out
        # the partial table was still written for inspection
        rows = ResultSet.load(out)
        assert rows.results[0].extra["failed"] is True

    def test_legacy_sweep_cli_queue_dir_with_all_cores_workers(self, tmp_path):
        """--workers 0 means 'all cores', which for the queue executor must
        still mean at least one local worker — not a coordinator that hangs."""
        from repro.experiment.sweep import main as sweep_main

        out = tmp_path / "rows.json"
        argv = [
            "--model", "lenet-300-100", "--dataset", "cifar10",
            "--strategies", "global_weight", "--compressions", "1,2",
            "--seeds", "0",
            "--model-kwargs", '{"input_size": 4, "in_channels": 3}',
            "--dataset-kwargs", '{"n_train": 32, "n_val": 16, "size": 4, "noise": 0.5}',
            "--pretrain-epochs", "1", "--finetune-epochs", "1",
            "--queue-dir", str(tmp_path / "q"), "--workers", "0",
            "--out", str(out),
        ]
        assert sweep_main(argv) == 0
        assert len(ResultSet.load(out)) == 2

    def test_legacy_sweep_cli_queue_dir_rejects_no_cache(self, tmp_path):
        from repro.experiment.sweep import main as sweep_main

        with pytest.raises(ValueError, match="no-cache"):
            sweep_main([
                "--model", "lenet-300-100", "--dataset", "cifar10",
                "--strategies", "global_weight",
                "--queue-dir", str(tmp_path / "q"), "--no-cache",
            ])


@pytest.mark.slow
class TestParallelExecutorFailureEvents:
    def test_parallel_failed_event_preserves_remote_traceback(self, tmp_path):
        """The audit fix: before, a worker-process exception surfaced with no
        cell attribution and only fut.result()'s local frames; now the event
        stream carries the remote traceback.  Uses a registry miss (not the
        crashy dataset) so the injected fault exists in worker processes
        under any multiprocessing start method."""
        from dataclasses import replace

        from repro.experiment import expand_sweep

        specs = expand_sweep(
            model="lenet-300-100",
            dataset="cifar10",
            strategies=["global_weight"],
            compressions=[1, 2],
            seeds=[0],
            model_kwargs=dict(input_size=8, in_channels=3),
            dataset_kwargs=dict(n_train=64, n_val=32, size=8, noise=0.5),
            pretrain=tiny_train(),
            finetune=tiny_train(),
        )
        bad = replace(specs[-1], strategy="not_a_strategy", compression=16.0)
        events = []
        with pytest.raises(KeyError, match="not_a_strategy"):
            ParallelExecutor(
                workers=2, cache=ResultCache(tmp_path / "c"),
                on_event=events.append,
            ).run(specs + [bad])
        failed = [e for e in events if e.kind == "failed"]
        assert len(failed) == 1
        assert "not_a_strategy" in failed[0].failure
        assert failed[0].label.endswith("not_a_strategy @ 16x")


def _tiny_real_config(queue_dir, **overrides) -> SweepConfig:
    """A ≥12-cell grid of real (non-crashy) micro experiments."""
    base = dict(
        model="lenet-300-100",
        dataset="cifar10",
        strategies=("global_weight", "random"),
        compressions=(1, 2, 4, 8),
        seeds=(0, 1),
        model_kwargs=dict(input_size=8, in_channels=3),
        dataset_kwargs=dict(n_train=64, n_val=32, size=8, noise=0.5),
        pretrain=tiny_train(),
        finetune=tiny_train(),
        executor="queue",
        executor_options=dict(
            queue_dir=str(queue_dir), local_workers=0, lease_timeout=3.0,
        ),
    )
    base.update(overrides)
    return SweepConfig(**base)


def _popen(argv, tmp_path, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src"), str(REPO / "tests")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env["REPRO_ARTIFACTS"] = str(tmp_path / "artifacts")
    return subprocess.Popen(
        [sys.executable, "-m", "repro"] + argv,
        env=env, cwd=str(REPO),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        **kwargs,
    )


@pytest.mark.slow
class TestQueueMultiProcess:
    """The acceptance flow, with real OS processes and a real kill."""

    def test_submit_two_workers_one_killed_matches_serial(self, tmp_path):
        """`python -m repro run --executor queue` + two `python -m repro
        worker` processes complete a 14-cell sweep even with one worker
        SIGKILLed mid-run, and the table equals the SerialExecutor table."""
        queue_dir = tmp_path / "q"
        config = _tiny_real_config(queue_dir)
        config_path = config.save(tmp_path / "sweep.json")
        specs = config.expand()
        assert len(specs) >= 12  # the acceptance floor: a real grid
        out = tmp_path / "rows.json"

        submit = _popen(
            ["run", str(config_path), "--out", str(out),
             "--wait-timeout", "600"],
            tmp_path,
        )
        workers = [
            _popen(["worker", str(queue_dir), "--idle-timeout", "30",
                    "--worker-id", f"w{i}"], tmp_path)
            for i in range(2)
        ]
        try:
            # let the fleet make progress, then kill one worker mid-run
            done_dir = queue_dir / "done"
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline:
                if done_dir.exists() and len(list(done_dir.glob("*.json"))) >= 2:
                    break
                time.sleep(0.2)
            workers[0].send_signal(signal.SIGKILL)
            stdout, _ = submit.communicate(timeout=600)
            assert submit.returncode == 0, stdout
        finally:
            for proc in [submit] + workers:
                if proc.poll() is None:
                    proc.kill()
                    proc.communicate()

        # no cell was quarantined, every cell landed
        counts = WorkQueue(queue_dir).counts()
        assert counts["failed"] == 0
        assert counts["done"] == len(specs)

        produced = ResultSet.load(out)
        serial_rows = SerialExecutor(cache=ResultCache(tmp_path / "ref")).run(specs)
        reference = assemble_results(specs, serial_rows, config.strategies)
        assert [r.to_dict() for r in produced] == [
            r.to_dict() for r in reference
        ]

    def test_worker_subprocess_survives_hard_crash_cell(self, tmp_path):
        """A crashy 'exit' cell os._exits the first worker (no cleanup, no
        fail report); the lease expires and a relaunched worker — importing
        the fixture module via --import — finishes the healed cell."""
        queue_dir = tmp_path / "q"
        queue = WorkQueue(queue_dir, lease_timeout=1.0, max_retries=2)
        spec = crashy_spec(
            cell="hardcrash", behavior="exit", fail_times=1,
            scratch=str(tmp_path / "scratch"),
        )
        h = queue.submit(spec)

        first = _popen(
            ["worker", str(queue_dir), "--import", "exp_fixtures",
             "--idle-timeout", "10"],
            tmp_path,
        )
        first.communicate(timeout=120)
        assert first.returncode == 17  # died inside the cell, mid-lease
        assert queue.state(h) == "leased"  # the dangling lease it left

        second = _popen(
            ["worker", str(queue_dir), "--import", "exp_fixtures",
             "--idle-timeout", "10"],
            tmp_path,
        )
        stdout, _ = second.communicate(timeout=120)
        assert second.returncode == 0, stdout
        assert queue.state(h) == "done"
        payload = queue.payload(h)
        assert "lease expired" in payload["failures"][0]["error"]
        assert ResultCache(queue_dir / "cache").get(spec) is not None
