"""Integration tests for pruning schedules driven through the Pruner."""

import numpy as np
import pytest

from repro.models import create_model
from repro.pruning import (
    GlobalMagWeight,
    Pruner,
    iterative_linear,
    one_shot,
    polynomial_decay,
)


@pytest.mark.parametrize("schedule_fn,steps", [
    (lambda c: one_shot(c), 1),
    (lambda c: iterative_linear(c, 4), 4),
    (lambda c: polynomial_decay(c, 4), 4),
])
def test_schedule_reaches_target(schedule_fn, steps):
    target = 8.0
    model = create_model("lenet-300-100", input_size=8, in_channels=1)
    pruner = Pruner(model, GlobalMagWeight())
    targets = schedule_fn(target)
    assert len(targets) == steps
    for t in targets:
        pruner.prune(t)
    assert pruner.actual_compression() == pytest.approx(target, rel=0.02)
    pruner.registry.validate()


def test_iterative_intermediate_compressions_monotone():
    model = create_model("lenet-300-100", input_size=8, in_channels=1)
    pruner = Pruner(model, GlobalMagWeight())
    seen = []
    for t in iterative_linear(16.0, 5):
        pruner.prune(t)
        seen.append(pruner.actual_compression())
    assert all(b > a for a, b in zip(seen, seen[1:]))
    assert seen[-1] == pytest.approx(16.0, rel=0.02)


def test_iterative_keeps_top_weights_of_final_oneshot():
    """With magnitude scoring and no retraining between steps, iterative
    pruning selects the same surviving set as one-shot (scores unchanged)."""
    m1 = create_model("lenet-300-100", input_size=8, in_channels=1, seed=0)
    m2 = create_model("lenet-300-100", input_size=8, in_channels=1, seed=0)
    p1 = Pruner(m1, GlobalMagWeight())
    p1.prune(8.0)
    p2 = Pruner(m2, GlobalMagWeight())
    for t in iterative_linear(8.0, 3):
        p2.prune(t)
    for name, mask in p1.registry.masks.items():
        np.testing.assert_array_equal(mask, p2.registry.masks[name])
