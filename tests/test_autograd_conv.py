"""Conv/pool forward correctness against naive reference implementations."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    avg_pool2d,
    conv2d,
    conv_output_shape,
    depthwise_conv2d,
    global_avg_pool2d,
    max_pool2d,
)


def naive_conv2d(x, w, b=None, stride=1, padding=0):
    """Direct 6-loop convolution used as ground truth."""
    n, c_in, h, wdt = x.shape
    c_out, _, kh, kw = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (x.shape[2] - kh) // stride + 1
    ow = (x.shape[3] - kw) // stride + 1
    out = np.zeros((n, c_out, oh, ow), dtype=np.float64)
    for ni in range(n):
        for f in range(c_out):
            for i in range(oh):
                for j in range(ow):
                    patch = x[ni, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[ni, f, i, j] = (patch * w[f]).sum()
            if b is not None:
                out[ni, f] += b[f]
    return out


class TestConvForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1), (3, 2)])
    def test_matches_naive(self, stride, padding, rng):
        x = rng.normal(size=(2, 3, 9, 9))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        want = naive_conv2d(x, w, b, stride, padding)
        got = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        np.testing.assert_allclose(got.data, want, rtol=1e-5, atol=1e-6)

    def test_1x1_conv_is_channel_mix(self, rng):
        x = rng.normal(size=(1, 3, 4, 4))
        w = rng.normal(size=(2, 3, 1, 1))
        got = conv2d(Tensor(x), Tensor(w)).data
        want = np.einsum("nchw,fc->nfhw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(got, want, rtol=1e-5)

    def test_grouped_matches_blockwise(self, rng):
        x = rng.normal(size=(2, 4, 6, 6))
        w = rng.normal(size=(6, 2, 3, 3))
        got = conv2d(Tensor(x), Tensor(w), padding=1, groups=2).data
        w1, w2 = w[:3], w[3:]
        want1 = naive_conv2d(x[:, :2], w1, None, 1, 1)
        want2 = naive_conv2d(x[:, 2:], w2, None, 1, 1)
        np.testing.assert_allclose(got, np.concatenate([want1, want2], axis=1), rtol=1e-5, atol=1e-6)

    def test_depthwise_matches_per_channel(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(3, 1, 3, 3))
        got = depthwise_conv2d(Tensor(x), Tensor(w), padding=1).data
        for c in range(3):
            want_c = naive_conv2d(x[:, c : c + 1], w[c : c + 1], None, 1, 1)
            np.testing.assert_allclose(got[:, c : c + 1], want_c, rtol=1e-5, atol=1e-6)

    def test_depthwise_dispatch_from_conv2d(self, rng):
        x = Tensor(rng.normal(size=(1, 4, 5, 5)))
        w = Tensor(rng.normal(size=(4, 1, 3, 3)))
        a = conv2d(x, w, padding=1, groups=4).data
        b = depthwise_conv2d(x, w, padding=1).data
        np.testing.assert_allclose(a, b)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 5, 5)))
        w = Tensor(rng.normal(size=(2, 4, 3, 3)))
        with pytest.raises(ValueError):
            conv2d(x, w)

    def test_bad_groups_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 5, 5)))
        w = Tensor(rng.normal(size=(2, 1, 3, 3)))
        with pytest.raises(ValueError):
            conv2d(x, w, groups=2)

    def test_depthwise_shape_validation(self, rng):
        with pytest.raises(ValueError):
            depthwise_conv2d(
                Tensor(rng.normal(size=(1, 3, 5, 5))),
                Tensor(rng.normal(size=(6, 1, 3, 3))),
            )


class TestOutputShape:
    @pytest.mark.parametrize(
        "hw,k,s,p,want",
        [
            ((8, 8), (3, 3), 1, 1, (8, 8)),
            ((8, 8), (3, 3), 2, 1, (4, 4)),
            ((7, 7), (3, 3), 2, 1, (4, 4)),
            ((32, 32), (5, 5), 1, 0, (28, 28)),
        ],
    )
    def test_known_geometries(self, hw, k, s, p, want):
        assert conv_output_shape(hw, k, s, p) == want

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            conv_output_shape((2, 2), (5, 5), 1, 0)


class TestPooling:
    def test_maxpool_2x2(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2, 2).data
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_grad_routes_to_argmax(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        t = Tensor(x, requires_grad=True)
        max_pool2d(t, 2, 2).sum().backward()
        want = np.zeros((4, 4))
        want[1, 1] = want[1, 3] = want[3, 1] = want[3, 3] = 1
        np.testing.assert_allclose(t.grad[0, 0], want)

    def test_avgpool_value(self):
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        out = avg_pool2d(Tensor(x), 2, 2).data
        np.testing.assert_allclose(out, np.ones((1, 1, 2, 2)))

    def test_avgpool_overlapping_stride(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        out = avg_pool2d(Tensor(x), 3, 1).data
        # verify one window by hand
        np.testing.assert_allclose(out[0, 0, 0, 0], x[0, 0, :3, :3].mean(), rtol=1e-6)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = global_avg_pool2d(Tensor(x)).data
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)), rtol=1e-6)


class TestMaxPoolBackwardEquivalence:
    """The non-overlap scatter fast path is byte-identical to np.add.at."""

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("kernel,stride", [(2, 2), (2, 3), (3, 3)])
    def test_scatter_matches_add_at(self, rng, dtype, kernel, stride):
        from repro.autograd.conv import (
            _max_pool2d_backward_add_at,
            _max_pool2d_backward_scatter,
        )

        n, c, h, w = 3, 4, 12, 12
        oh = ow = (h - kernel) // stride + 1
        arg = np.random.default_rng(0).integers(0, kernel * kernel, (n, c, oh, ow))
        g = rng.normal(size=(n, c, oh, ow)).astype(dtype)
        g[0, 0, 0, 0] = -0.0  # the one value where += and = could differ
        fast = _max_pool2d_backward_scatter((n, c, h, w), arg, g, kernel, stride, dtype)
        ref = _max_pool2d_backward_add_at((n, c, h, w), arg, g, kernel, stride, dtype)
        assert fast.dtype == ref.dtype
        assert fast.tobytes() == ref.tobytes()

    def test_backward_through_tensor_uses_fast_path(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        t = Tensor(x, requires_grad=True)
        out = max_pool2d(t, 2, 2)
        out.backward(np.ones_like(out.data))
        # every window routes exactly one unit of gradient
        assert t.grad.sum() == out.data.size
        assert set(np.unique(t.grad)) <= {0.0, 1.0}

    def test_overlapping_windows_accumulate(self, rng):
        # stride < kernel exercises the np.add.at reference path
        x = np.zeros((1, 1, 4, 4))
        x[0, 0, 1, 1] = 10.0  # argmax of all four overlapping 3x3 windows
        t = Tensor(x, requires_grad=True)
        out = max_pool2d(t, 3, 1)
        out.backward(np.ones_like(out.data))
        assert t.grad[0, 0, 1, 1] == 4.0  # four windows all point at (1,1)
        assert t.grad.sum() == out.data.size
