"""Tests for the performance subsystem (repro.perf + `python -m repro bench`).

Covers the harness edge cases the issue calls out — empty pattern match,
``--compare`` against a baseline missing a bench, non-finite timings
rejected — plus byte-equivalence of every vectorized hot path against its
row-loop reference twin, so a "faster" implementation can never drift from
the semantics it replaced.
"""

import json
import math

import numpy as np
import pytest

from repro.cli import main
from repro.perf import (
    BENCH_SCHEMA_VERSION,
    BENCHMARKS,
    BenchResult,
    Timer,
    compare_results,
    load_bench_report,
    make_result_frame,
    report_to_dict,
    run_benchmark,
    select_benchmarks,
)


def result(name, median=1.0, **overrides):
    kwargs = dict(name=name, reps=3, inner=1, warmup=1, median=median,
                  mean=median, std=0.0, min=median, max=median)
    kwargs.update(overrides)
    return BenchResult(**kwargs)


class TestHarness:
    def test_curated_suite_registered(self):
        names = BENCHMARKS.available()
        # one bench per documented hot path, plus the reference twins
        for expected in (
            "autograd_conv2d_forward", "autograd_conv2d_backward",
            "autograd_maxpool_backward", "autograd_maxpool_backward_addat",
            "nn_train_step", "pruning_mask_apply", "pruning_magnitude_scores",
            "experiment_cache_hit", "experiment_cache_miss",
            "experiment_queue_claim",
            "frame_filter_vectorized", "frame_filter_rowloop",
            "frame_group_by_vectorized", "frame_group_by_rowloop",
            "frame_join_baseline_vectorized", "frame_join_baseline_rowloop",
        ):
            assert expected in names

    def test_select_benchmarks_glob_substring_and_empty(self):
        assert [b.name for b in select_benchmarks("frame_group*")] == \
            ["frame_group_by_rowloop", "frame_group_by_vectorized"]
        assert {b.name for b in select_benchmarks("cache")} == \
            {"experiment_cache_hit", "experiment_cache_miss"}
        assert select_benchmarks("no-such-bench") == []

    def test_select_benchmarks_regex_alternative(self):
        # ``store_.*`` is regex intent — under pure fnmatch the literal
        # dot would match nothing
        names = {b.name for b in select_benchmarks("store_.*")}
        # re.search anchors nowhere, so the report benches match too
        assert names == {
            "store_ingest_1m", "store_load_1m", "store_load_1m_json_twin",
            "store_query_pushdown_1m", "store_query_fullscan_twin_1m",
            "report_from_store_1m", "report_from_store_1m_json_twin",
            "report_from_store_incremental_1m",
        }
        assert {b.name for b in
                select_benchmarks("store_.*|report_from_store_1m")} == names
        assert {b.name for b in select_benchmarks("^store_.*")} == {
            "store_ingest_1m", "store_load_1m", "store_load_1m_json_twin",
            "store_query_pushdown_1m", "store_query_fullscan_twin_1m",
        }
        # a broken regex alternative is ignored rather than raising
        assert select_benchmarks("[unclosed") == []

    def test_timer_calibrates_inner_loops_for_fast_functions(self):
        timer = Timer(warmup=0, repeats=2, min_time=0.01)
        times, inner = timer.measure(lambda: None)
        assert inner > 1
        assert len(times) == 2
        assert all(t >= 0 for t in times)

    def test_timer_rejects_bad_config(self):
        with pytest.raises(ValueError):
            Timer(repeats=0)
        with pytest.raises(ValueError):
            Timer(warmup=-1)
        with pytest.raises(ValueError):
            Timer(min_time=-0.1)

    def test_non_finite_timings_rejected(self):
        for bad in (float("nan"), float("inf"), -1.0):
            with pytest.raises(ValueError, match="timing"):
                result("x", median=bad)
        with pytest.raises(ValueError):
            BenchResult.from_times("x", [], inner=1, warmup=0)

    def test_run_benchmark_executes_and_cleans_up(self, tmp_path):
        cleaned = []
        bench = next(iter(select_benchmarks("pruning_mask_apply")))
        res = run_benchmark(bench, Timer(warmup=0, repeats=2, min_time=0.001))
        assert res.name == "pruning_mask_apply"
        assert res.median > 0 and math.isfinite(res.median)
        # factories returning (fn, cleanup) have cleanup called exactly once
        from repro.perf.harness import Benchmark
        b = Benchmark("t", lambda: ((lambda: None), lambda: cleaned.append(1)))
        run_benchmark(b, Timer(warmup=0, repeats=1, min_time=0.0))
        assert cleaned == [1]

    def test_report_roundtrip_and_schema_guard(self, tmp_path):
        payload = report_to_dict([result("a"), result("b", median=2.0)], tag="t")
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["tag"] == "t"
        assert {"python", "numpy", "platform"} <= set(payload["environment"])
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload))
        loaded = load_bench_report(path)
        assert [r.name for r in loaded["results"]] == ["a", "b"]
        path.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ValueError, match="schema"):
            load_bench_report(path)

    def test_compare_statuses(self):
        current = [result("same"), result("slow", median=2.0),
                   result("fast", median=0.1), result("new")]
        baseline = [result("same"), result("slow"), result("fast"),
                    result("gone")]
        comps = {c.name: c for c in compare_results(current, baseline,
                                                    threshold_pct=20.0)}
        assert comps["same"].status == "ok"
        assert comps["slow"].status == "regression"
        assert comps["slow"].ratio == pytest.approx(2.0)
        assert comps["fast"].status == "faster"
        assert comps["new"].status == "no-baseline"
        assert comps["gone"].status == "missing"
        # benches on only one side never fail the comparison
        assert all(comps[n].status != "regression" for n in ("new", "gone"))
        with pytest.raises(ValueError):
            compare_results(current, baseline, threshold_pct=-1)


class TestFrameEquivalence:
    """The vectorized frame paths are byte-identical to their row loops."""

    @pytest.fixture(scope="class")
    def frame(self):
        return make_result_frame(rows=3000, seed=7)

    def assert_frames_equal(self, a, b):
        assert a.columns == b.columns
        for name in a.columns:
            ca, cb = a[name], b[name]
            assert ca.dtype == cb.dtype
            if ca.dtype.kind == "f":
                assert ca.tobytes() == cb.tobytes()
            else:
                assert list(ca) == list(cb)

    @pytest.mark.parametrize("keys,single", [
        (("strategy", "compression"), False),
        (("model", "dataset", "seed"), False),
        ("compression", True),
        ("seed", True),
    ])
    @pytest.mark.parametrize("sort", [True, False])
    def test_group_by_matches_rowloop(self, frame, keys, single, sort):
        names = (keys,) if single else tuple(keys)
        fast = frame.group_by(keys, sort=sort)
        ref = frame._group_by_rows(names, single=single, sort=sort)
        assert [k for k, _ in fast] == [k for k, _ in ref]
        for (_, fa), (_, fb) in zip(fast, ref):
            self.assert_frames_equal(fa, fb)

    def test_group_by_nan_keys_fall_back_to_rowloop_semantics(self):
        frame = make_result_frame(rows=50, seed=0).with_columns(
            compression=np.array([np.nan] * 3 + [2.0] * 47)
        )
        fast = frame.group_by("compression", sort=False)
        ref = frame._group_by_rows(("compression",), single=True, sort=False)
        assert len(fast) == len(ref)  # every NaN stays its own group
        for (_, fa), (_, fb) in zip(fast, ref):
            self.assert_frames_equal(fa, fb)

    def test_group_by_empty_frame_and_unknown_column(self, frame):
        empty = frame.take(np.zeros(0, dtype=np.int64))
        assert empty.group_by("strategy") == []
        with pytest.raises(KeyError):
            empty.group_by("nope")
        with pytest.raises(KeyError):
            frame.group_by("nope")

    def test_join_baseline_matches_rowloop(self, frame):
        on = ("model", "dataset", "seed")
        fast = frame._join_baseline_batched(on)
        ref = frame._join_baseline_rows(on)
        for col in ("control_top1", "control_top5"):
            assert fast[col].tobytes() == ref[col].tobytes()
        # and the public method routes to the batched result
        self.assert_frames_equal(frame.join_baseline(on), fast)

    def test_join_baseline_no_controls(self):
        frame = make_result_frame(rows=40, seed=1).filter(
            compression=lambda c: c > 1.0
        )
        joined = frame.join_baseline()
        assert np.isnan(joined["control_top1"]).all()
        ref = frame._join_baseline_rows(("model", "dataset", "seed"))
        assert joined["control_top1"].tobytes() == ref["control_top1"].tobytes()

    def test_filter_membership_matches_python_set(self, frame):
        fast = frame.mask(compression=[2.0, 8.0], seed=[0, 3])
        ref = np.fromiter(
            ((c in {2.0, 8.0}) and (s in {0, 3})
             for c, s in zip(frame["compression"], frame["seed"])),
            dtype=bool, count=len(frame),
        )
        assert (fast == ref).all()
        # NaN membership keeps the (always-False) set semantics
        nanframe = frame.with_columns(
            top1=np.where(frame["seed"] == 0, np.nan, frame["top1"])
        )
        assert not nanframe.mask(top1=[float("nan")]).any()


class TestBenchCLI:
    def run_bench(self, *argv):
        return main(["bench", *argv])

    def test_empty_pattern_exits_2(self, capsys):
        assert self.run_bench("no-such-bench") == 2
        assert "no benchmarks match" in capsys.readouterr().err

    def test_list_only(self, capsys):
        assert self.run_bench("frame_group*", "--list") == 0
        out = capsys.readouterr().out
        assert "frame_group_by_vectorized" in out
        assert "median" not in out

    def test_run_json_and_compare(self, tmp_path, capsys):
        out = tmp_path / "BENCH_a.json"
        argv = ["pruning_mask_apply", "--repeats", "2", "--warmup", "0",
                "--min-time", "0.001", "--no-mem"]
        assert self.run_bench(*argv, "--json", str(out)) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        [entry] = payload["benchmarks"]
        assert entry["name"] == "pruning_mask_apply"
        assert math.isfinite(entry["median"]) and entry["median"] >= 0

        # same workload vs its own baseline: no regression.  A generous
        # threshold keeps this about the comparison plumbing, not
        # sub-microsecond scheduler jitter on a loaded test machine.
        assert self.run_bench(*argv, "--compare", str(out),
                              "--threshold", "300") == 0

        # injected regression: baseline claims 1000x faster -> exit 1
        for b in payload["benchmarks"]:
            for stat in ("median", "mean", "min", "max"):
                b[stat] /= 1000.0
        fast = tmp_path / "BENCH_fast.json"
        fast.write_text(json.dumps(payload))
        capsys.readouterr()
        assert self.run_bench(*argv, "--compare", str(fast)) == 1
        assert "regressed" in capsys.readouterr().err

    def test_compare_baseline_missing_bench_is_not_a_regression(
            self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_other.json"
        baseline.write_text(json.dumps(report_to_dict([result("other")])))
        assert self.run_bench(
            "pruning_mask_apply", "--repeats", "2", "--warmup", "0",
            "--min-time", "0.001", "--no-mem", "--compare", str(baseline),
        ) == 0
        out = capsys.readouterr().out
        assert "no baseline entry" in out
        assert "in baseline but not in this run" in out

    def test_compare_corrupt_baseline_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": BENCH_SCHEMA_VERSION,
                                   "benchmarks": [{"name": "x", "reps": 1,
                                                   "inner": 1, "warmup": 0,
                                                   "median": float("nan"),
                                                   "mean": 0.0, "std": 0.0,
                                                   "min": 0.0, "max": 0.0}]}))
        assert self.run_bench(
            "pruning_mask_apply", "--repeats", "1", "--warmup", "0",
            "--min-time", "0.0", "--no-mem", "--compare", str(bad),
        ) == 2
        assert "cannot load baseline" in capsys.readouterr().err

    def test_compare_structurally_malformed_baseline_exits_2(
            self, tmp_path, capsys):
        bad = tmp_path / "malformed.json"
        bad.write_text(json.dumps({"schema": BENCH_SCHEMA_VERSION,
                                   "benchmarks": [{"median": 1.0}]}))
        assert self.run_bench(
            "pruning_mask_apply", "--repeats", "1", "--warmup", "0",
            "--min-time", "0.0", "--no-mem", "--compare", str(bad),
        ) == 2
        err = capsys.readouterr().err
        assert "cannot load baseline" in err and "missing required" in err

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro " in capsys.readouterr().out
