"""Shared fixtures: isolated artifact cache, small models and datasets."""

import os

# Route all checkpoint/figure artifacts produced by tests to a throwaway
# location BEFORE repro is imported anywhere.
os.environ.setdefault("REPRO_ARTIFACTS", "/tmp/repro_test_artifacts")

import numpy as np
import pytest

from repro.data import SyntheticCIFAR10
from repro.models import create_model


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def tiny_cifar():
    """A very small CIFAR-10 surrogate for fast integration tests."""
    return SyntheticCIFAR10(n_train=256, n_val=96, size=8, seed=0)


@pytest.fixture
def tiny_resnet():
    """Smallest CIFAR ResNet at reduced width."""
    return create_model("resnet-20", width_scale=0.25, seed=0)


@pytest.fixture
def tiny_vgg():
    return create_model("cifar-vgg", width_scale=0.125, input_size=8, seed=0)
