"""Unit tests for fused functionals: softmax family, losses, batchnorm, dropout."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    batch_norm2d,
    cross_entropy,
    dropout,
    linear,
    log_softmax,
    mse_loss,
    nll_loss,
    softmax,
)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = softmax(Tensor(rng.normal(size=(4, 7)))).data
        np.testing.assert_allclose(out.sum(axis=1), np.ones(4), rtol=1e-5)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        a = softmax(Tensor(x)).data
        b = softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, rtol=1e-5)

    def test_large_logits_stable(self):
        out = softmax(Tensor(np.array([[1e4, 0.0]]))).data
        assert np.isfinite(out).all()

    def test_log_softmax_is_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 6)))
        np.testing.assert_allclose(
            log_softmax(x).data, np.log(softmax(x).data), rtol=1e-5, atol=1e-6
        )


class TestCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = logits[1, 2] = 20.0
        loss = cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-6

    def test_uniform_prediction_is_log_c(self):
        loss = cross_entropy(Tensor(np.zeros((4, 10))), np.zeros(4, dtype=np.int64))
        assert loss.item() == pytest.approx(np.log(10), rel=1e-5)

    def test_backward_is_softmax_minus_onehot(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        t = np.array([0, 1, 2])
        cross_entropy(x, t).backward()
        sm = softmax(Tensor(x.data)).data
        onehot = np.eye(4)[t]
        np.testing.assert_allclose(x.grad, (sm - onehot) / 3, rtol=1e-5, atol=1e-6)

    def test_nll_loss_value(self):
        lp = np.log(np.full((2, 2), 0.5))
        loss = nll_loss(Tensor(lp), np.array([0, 1]))
        assert loss.item() == pytest.approx(np.log(2), rel=1e-5)


class TestMseLinear:
    def test_mse_zero_on_equal(self, rng):
        x = rng.normal(size=(3, 3))
        assert mse_loss(Tensor(x), Tensor(x.copy())).item() == pytest.approx(0.0)

    def test_linear_matches_manual(self, rng):
        x, w, b = rng.normal(size=(2, 3)), rng.normal(size=(4, 3)), rng.normal(size=4)
        out = linear(Tensor(x), Tensor(w), Tensor(b)).data
        np.testing.assert_allclose(out, x @ w.T + b, rtol=1e-5)


class TestBatchNorm:
    def test_train_output_normalized(self, rng):
        x = Tensor(rng.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5)))
        g = Tensor(np.ones(4))
        b = Tensor(np.zeros(4))
        out = batch_norm2d(x, g, b, np.zeros(4), np.ones(4), training=True).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), np.ones(4), atol=1e-3)

    def test_running_stats_updated(self, rng):
        x = Tensor(rng.normal(loc=5.0, size=(16, 2, 4, 4)))
        rm, rv = np.zeros(2), np.ones(2)
        batch_norm2d(x, Tensor(np.ones(2)), Tensor(np.zeros(2)), rm, rv,
                     training=True, momentum=0.5)
        assert np.all(rm > 1.0)  # pulled toward batch mean of ~5

    def test_eval_uses_running_stats(self, rng):
        x = rng.normal(size=(4, 2, 3, 3))
        rm, rv = np.full(2, 1.0), np.full(2, 4.0)
        out = batch_norm2d(
            Tensor(x), Tensor(np.ones(2)), Tensor(np.zeros(2)), rm, rv, training=False
        ).data
        want = (x - 1.0) / np.sqrt(4.0 + 1e-5)
        np.testing.assert_allclose(out, want, rtol=1e-4, atol=1e-5)

    def test_eval_does_not_touch_running_stats(self, rng):
        rm, rv = np.zeros(2), np.ones(2)
        batch_norm2d(
            Tensor(rng.normal(size=(4, 2, 3, 3))),
            Tensor(np.ones(2)), Tensor(np.zeros(2)), rm, rv, training=False,
        )
        np.testing.assert_allclose(rm, 0.0)
        np.testing.assert_allclose(rv, 1.0)

    def test_affine_applied(self, rng):
        x = Tensor(rng.normal(size=(8, 1, 4, 4)))
        out = batch_norm2d(
            x, Tensor(np.array([2.0])), Tensor(np.array([7.0])),
            np.zeros(1), np.ones(1), training=True,
        ).data
        assert out.mean() == pytest.approx(7.0, abs=1e-3)


class TestDropout:
    def test_eval_is_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        out = dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_p_zero_is_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        assert dropout(x, 0.0, rng, training=True) is x

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.3, rng, training=True).data
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_gradient_masked_like_forward(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((10, 10)), requires_grad=True)
        out = dropout(x, 0.5, rng, training=True)
        out.sum().backward()
        # grad is keep/(1-p) wherever kept, zero where dropped
        np.testing.assert_allclose((out.data > 0), (x.grad > 0))
