"""Unit tests for the experiment harness: configs, trainer, results."""

import numpy as np
import pytest

from repro.experiment import (
    ExperimentSpec,
    OptimizerConfig,
    PruningExperiment,
    PruningResult,
    ResultSet,
    TrainConfig,
    Trainer,
    aggregate_curve,
    build_dataset,
    build_optimizer,
    cifar_finetune_config,
    fix_seeds,
    imagenet_finetune_config,
)
from repro.models import create_model
from repro.optim import SGD, Adam
from repro.pruning import GlobalMagWeight, Pruner


class TestConfigs:
    def test_cifar_defaults_match_appendix_c(self):
        cfg = cifar_finetune_config()
        assert cfg.optimizer.name == "adam"
        assert cfg.optimizer.lr == pytest.approx(3e-4)
        assert cfg.batch_size == 64
        assert cfg.epochs == 30

    def test_imagenet_defaults_match_appendix_c(self):
        cfg = imagenet_finetune_config()
        assert cfg.optimizer.name == "sgd"
        assert cfg.optimizer.nesterov
        assert cfg.optimizer.momentum == pytest.approx(0.9)
        assert cfg.optimizer.lr == pytest.approx(1e-3)
        assert cfg.batch_size == 256

    def test_optimizer_config_validation(self):
        with pytest.raises(ValueError):
            OptimizerConfig(name="rmsprop")
        with pytest.raises(ValueError):
            OptimizerConfig(lr=-1.0)

    def test_build_optimizer_dispatch(self):
        m = create_model("lenet-300-100", input_size=8, in_channels=1)
        assert isinstance(build_optimizer(m, cifar_finetune_config()), Adam)
        assert isinstance(build_optimizer(m, imagenet_finetune_config()), SGD)

    def test_config_to_dict(self):
        d = cifar_finetune_config().to_dict()
        assert d["optimizer"]["name"] == "adam"


class TestDatasetRegistry:
    def test_known_datasets(self):
        ds = build_dataset("cifar10", n_train=32, n_val=16, size=8)
        assert len(ds.train) == 32

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            build_dataset("cifar11")


class TestTrainer:
    def _config(self, epochs=3):
        return TrainConfig(
            epochs=epochs,
            batch_size=32,
            optimizer=OptimizerConfig("adam", 2e-3),
            early_stop_patience=None,
        )

    def test_loss_decreases(self, tiny_cifar):
        m = create_model("lenet-300-100", input_size=8, in_channels=3)
        trainer = Trainer(m, tiny_cifar, self._config(), seed=0)
        history = trainer.run()
        assert history[-1]["train_loss"] < history[0]["train_loss"]

    def test_history_schema(self, tiny_cifar):
        m = create_model("lenet-300-100", input_size=8, in_channels=3)
        history = Trainer(m, tiny_cifar, self._config(epochs=1), seed=0).run()
        assert set(history[0]) >= {"epoch", "train_loss", "val_loss", "val_top1"}

    def test_early_stopping_halts(self, tiny_cifar):
        cfg = TrainConfig(
            epochs=50,
            batch_size=32,
            optimizer=OptimizerConfig("sgd", lr=1e-8),  # no progress -> stop
            early_stop_patience=2,
        )
        m = create_model("lenet-300-100", input_size=8, in_channels=3)
        history = Trainer(m, tiny_cifar, cfg, seed=0).run()
        assert len(history) < 50

    def test_masked_training_keeps_masks(self, tiny_cifar):
        m = create_model("lenet-300-100", input_size=8, in_channels=3)
        registry = Pruner(m, GlobalMagWeight()).prune(4)
        trainer = Trainer(m, tiny_cifar, self._config(epochs=2), seed=0, masks=registry)
        trainer.run()
        registry.validate()

    def test_determinism_given_seed(self, tiny_cifar):
        def run():
            fix_seeds(0)
            m = create_model("lenet-300-100", input_size=8, in_channels=3, seed=0)
            Trainer(m, tiny_cifar, self._config(epochs=1), seed=7).run()
            return m.fc3.weight.data.copy()

        np.testing.assert_array_equal(run(), run())


class TestResults:
    def _result(self, **kw):
        base = dict(
            model="resnet-56", dataset="cifar10", strategy="global_weight",
            compression=4.0, seed=0, top1=0.8, baseline_top1=0.9,
        )
        base.update(kw)
        return PruningResult(**base)

    def test_delta_top1(self):
        assert self._result().delta_top1 == pytest.approx(-0.1)

    def test_roundtrip_dict(self):
        r = self._result()
        r2 = PruningResult.from_dict(r.to_dict())
        assert r2.to_dict() == r.to_dict()

    def test_resultset_filter(self):
        rs = ResultSet([self._result(seed=s, strategy=st)
                        for s in (0, 1) for st in ("a", "b")])
        assert len(rs.filter(strategy="a")) == 2
        assert len(rs.filter(strategy="a", seed=1)) == 1
        assert rs.strategies() == ["a", "b"]
        assert rs.seeds() == [0, 1]

    def test_save_load_roundtrip(self, tmp_path):
        rs = ResultSet([self._result(seed=s) for s in range(3)])
        path = tmp_path / "results.json"
        rs.save(path)
        rs2 = ResultSet.load(path)
        assert len(rs2) == 3
        assert rs2.results[0].model == "resnet-56"

    def test_aggregate_curve_mean_std(self):
        rs = [
            self._result(seed=0, compression=2.0, top1=0.8),
            self._result(seed=1, compression=2.0, top1=0.9),
            self._result(seed=0, compression=4.0, top1=0.7),
        ]
        pts = aggregate_curve(rs)
        assert len(pts) == 2
        assert pts[0].x == 2.0
        assert pts[0].mean == pytest.approx(0.85)
        assert pts[0].std == pytest.approx(np.std([0.8, 0.9], ddof=1))
        assert pts[1].std == 0.0
        assert pts[0].n == 2


class TestPruningExperimentIntegration:
    @pytest.fixture(scope="class")
    def mini_result(self):
        spec = ExperimentSpec(
            model="lenet-300-100",
            dataset="cifar10",
            strategy="global_weight",
            compression=4.0,
            seed=0,
            model_kwargs=dict(input_size=8, in_channels=3),
            dataset_kwargs=dict(n_train=192, n_val=96, size=8),
            pretrain=TrainConfig(epochs=2, batch_size=32,
                                 optimizer=OptimizerConfig("adam", 2e-3),
                                 early_stop_patience=None),
            finetune=TrainConfig(epochs=1, batch_size=32,
                                 optimizer=OptimizerConfig("adam", 3e-4),
                                 early_stop_patience=None),
        )
        return PruningExperiment(spec).run()

    def test_metrics_populated(self, mini_result):
        r = mini_result
        assert r.actual_compression == pytest.approx(4.0, rel=0.02)
        assert r.theoretical_speedup > 1.0
        assert r.total_params > r.nonzero_params > 0
        assert r.dense_flops > r.effective_flops > 0
        assert 0 <= r.top1 <= 1
        assert r.pretrained_key != ""

    def test_finetune_recovers_accuracy(self, mini_result):
        assert mini_result.top1 >= mini_result.pre_finetune_top1 - 0.02

    def test_baseline_no_prune_path(self):
        spec = ExperimentSpec(
            model="lenet-300-100",
            dataset="cifar10",
            strategy="global_weight",
            compression=1.0,
            seed=0,
            model_kwargs=dict(input_size=8, in_channels=3),
            dataset_kwargs=dict(n_train=192, n_val=96, size=8),
            pretrain=TrainConfig(epochs=2, batch_size=32,
                                 optimizer=OptimizerConfig("adam", 2e-3),
                                 early_stop_patience=None),
        )
        r = PruningExperiment(spec).run()
        assert r.actual_compression == 1.0
        assert r.top1 == pytest.approx(r.baseline_top1)

    def test_checkpoint_cache_reused(self, mini_result):
        # same pretraining config -> same checkpoint key
        spec = ExperimentSpec(
            model="lenet-300-100",
            dataset="cifar10",
            strategy="random",
            compression=2.0,
            seed=1,
            model_kwargs=dict(input_size=8, in_channels=3),
            dataset_kwargs=dict(n_train=192, n_val=96, size=8),
            pretrain=TrainConfig(epochs=2, batch_size=32,
                                 optimizer=OptimizerConfig("adam", 2e-3),
                                 early_stop_patience=None),
            finetune=TrainConfig(epochs=1, batch_size=32,
                                 optimizer=OptimizerConfig("adam", 3e-4),
                                 early_stop_patience=None),
        )
        r = PruningExperiment(spec).run()
        assert r.pretrained_key == mini_result.pretrained_key
        assert r.baseline_top1 == pytest.approx(mini_result.baseline_top1)
