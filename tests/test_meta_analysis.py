"""Tests for normalization, tradeoff figures, and the checklist audit."""

import numpy as np
import pytest

from repro.experiment import PruningResult, ResultSet
from repro.meta import (
    FAMILIES,
    IMAGENET_BASELINES,
    Corpus,
    Paper,
    ReportedCurve,
    TradeoffPoint,
    audit_results,
    build_corpus,
    family_curve,
    fig1_series,
    fig3_panels,
    fig5_split,
    normalize_point,
    standardized_initial_flops,
    standardized_initial_sizes,
)


@pytest.fixture(scope="module")
def corpus():
    return build_corpus()


class TestNormalization:
    def _mini_corpus(self):
        p = Paper(key="p1", label="P1", year=2018, peer_reviewed=True,
                  pairs=[("ImageNet", "VGG-16")])
        curves = [
            ReportedCurve(
                paper_key="p1", method="m", dataset="ImageNet",
                architecture="VGG-16",
                points=[
                    TradeoffPoint(compression=2.0, delta_top1=-1.0,
                                  initial_params=100e6, initial_flops=10e9),
                    TradeoffPoint(compression=4.0, delta_top1=-2.0,
                                  initial_params=140e6),
                ],
            )
        ]
        return Corpus([p], curves)

    def test_standardized_size_is_median(self):
        c = self._mini_corpus()
        sizes = standardized_initial_sizes(c)
        assert sizes["VGG-16"] == pytest.approx(120e6)  # median of 100M, 140M

    def test_standardized_flops(self):
        c = self._mini_corpus()
        flops = standardized_initial_flops(c)
        assert flops["VGG-16"] == pytest.approx(10e9)

    def test_normalize_point_math(self):
        pt = TradeoffPoint(compression=4.0, speedup=2.0, delta_top1=-1.5)
        out = normalize_point(
            pt, "VGG-16", {"VGG-16": 120e6}, {"VGG-16": 10e9}, 71.6, 90.4
        )
        assert out["params"] == pytest.approx(30e6)
        assert out["flops"] == pytest.approx(5e9)
        assert out["top1"] == pytest.approx(70.1)

    def test_normalize_point_without_metrics_is_none(self):
        pt = TradeoffPoint(delta_top1=-1.0)
        assert normalize_point(pt, "VGG-16", {}, {}, 70, 90) is None


class TestFamilies:
    def test_known_families_present(self):
        assert set(FAMILIES) == {"VGG", "ResNet", "MobileNet-v2", "EfficientNet"}

    def test_family_curve_monotone_size(self):
        curve = family_curve("ResNet")
        assert curve["xs"] == sorted(curve["xs"])

    def test_family_curve_units(self):
        params = family_curve("VGG", x="params")["xs"]
        flops = family_curve("VGG", x="flops")["xs"]
        assert params[0] > 1e8  # 130M+ params
        assert flops[0] < 1e11  # GFLOPs scale

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            family_curve("AlexNet-family")


class TestFigure1:
    def test_efficientnet_has_no_pruned_points(self, corpus):
        # "There are no pruned EfficientNets since EfficientNet was
        #  published too recently." (footnote 2)
        _, pruned = fig1_series(corpus)
        assert "EfficientNet" not in pruned

    def test_pruned_families_present(self, corpus):
        _, pruned = fig1_series(corpus)
        assert {"VGG", "ResNet", "MobileNet-v2"} <= set(pruned)

    def test_four_metric_combinations(self, corpus):
        for x in ("params", "flops"):
            for y in ("top1", "top5"):
                fams, pruned = fig1_series(corpus, x_metric=x, y_metric=y)
                assert fams and pruned

    def test_pruned_accuracies_plausible(self, corpus):
        _, pruned = fig1_series(corpus)
        for fam, pts in pruned.items():
            assert all(30 < y < 90 for y in pts["ys"]), fam


class TestFigure3:
    def test_panel_grid(self, corpus):
        panels = fig3_panels(corpus)
        cols = {k[0] for k in panels}
        assert cols == {
            "VGG-16 on ImageNet",
            "Alex/CaffeNet on ImageNet",
            "ResNet-50 on ImageNet",
            "ResNet-56 on CIFAR-10",
        }

    def test_no_top5_for_cifar(self, corpus):
        panels = fig3_panels(corpus)
        assert not any(
            k[0] == "ResNet-56 on CIFAR-10" and "top5" in k[2] for k in panels
        )

    def test_methods_sparse_across_panels(self, corpus):
        # the fragmentation finding: no panel contains every method
        panels = fig3_panels(corpus)
        sizes = [len(v) for v in panels.values()]
        all_methods = {c.label for v in panels.values() for c in v}
        assert max(sizes) < len(all_methods)

    def test_curve_points_sorted_by_x(self, corpus):
        panels = fig3_panels(corpus)
        for curves in panels.values():
            for c in curves:
                assert c.xs == sorted(c.xs)

    def test_frame_query_byte_matches_seed_era_bucketing(self, corpus):
        """The frame-based fig3 must reproduce the pre-refactor dict-
        bucketing output exactly on the bundled corpus (labels, curve
        order, point order, values)."""
        from repro.meta import FIG3_COLUMNS, FIG3_METRIC_ROWS

        old = {}
        for col_label, pairs in FIG3_COLUMNS:
            for x_metric, y_metric in FIG3_METRIC_ROWS:
                if "top5" in y_metric and col_label == "ResNet-56 on CIFAR-10":
                    continue
                curves = []
                for pair in pairs:
                    for rc in corpus.curves_for_pair(*pair):
                        xs, ys = [], []
                        for pt in rc.points:
                            x = getattr(pt, x_metric)
                            y = getattr(pt, y_metric)
                            if x is not None and y is not None:
                                xs.append(float(x))
                                ys.append(float(y))
                        if xs:
                            order = np.argsort(xs)
                            paper = corpus.papers[rc.paper_key]
                            curves.append((
                                rc.method,
                                [xs[i] for i in order],
                                [ys[i] for i in order],
                                rc.paper_key,
                                paper.year,
                            ))
                if curves:
                    old[(col_label, x_metric, y_metric)] = curves
        new = fig3_panels(corpus)
        assert set(old) == set(new)
        for key in old:
            got = [(c.label, c.xs, c.ys, c.paper_key, c.year) for c in new[key]]
            assert got == old[key], key


class TestFigure1SeedEraEquivalence:
    def test_frame_query_byte_matches_seed_era_bucketing(self, corpus):
        """Frame-based fig1 must reproduce the pre-refactor per-row
        bucketing exactly on the bundled corpus, for every metric pair."""
        from repro.meta import normalized_results

        member_of = {
            "VGG-16": "VGG", "ResNet-50": "ResNet", "ResNet-18": "ResNet",
            "ResNet-34": "ResNet", "MobileNet-v2": "MobileNet-v2",
        }
        for x_metric, y_metric in (
            ("params", "top1"), ("flops", "top1"),
            ("params", "top5"), ("flops", "top5"),
        ):
            xkey = "params" if x_metric == "params" else "flops"
            old = {}
            for row in normalized_results(corpus, IMAGENET_BASELINES):
                if row["dataset"] != "ImageNet":
                    continue
                fam = member_of.get(row["architecture"])
                if fam is None or xkey not in row or y_metric not in row:
                    continue
                bucket = old.setdefault(fam, {"xs": [], "ys": []})
                bucket["xs"].append(row[xkey])
                bucket["ys"].append(row[y_metric])
            _, new = fig1_series(corpus, x_metric=x_metric, y_metric=y_metric)
            assert new == old, (x_metric, y_metric)


class TestFigure5:
    def test_split_nonempty(self, corpus):
        mag, others = fig5_split(corpus)
        assert len(mag) >= 5  # several magnitude variants
        assert len(others) >= 5

    def test_magnitude_variability_rivals_method_variability(self, corpus):
        """§4.5: fine-tuning variation ~ method variation (Figure 5)."""
        mag, others = fig5_split(corpus)

        def spread(curves):
            ys = [y for c in curves for y in c.ys]
            return np.percentile(ys, 90) - np.percentile(ys, 10)

        assert spread(mag) > 0.4 * spread(others)

    def test_curves_are_resnet50_absolute_top1(self, corpus):
        mag, others = fig5_split(corpus)
        for c in mag + others:
            assert all(40 < y < 80 for y in c.ys)  # absolute Top-1 band

    def test_frame_query_byte_matches_seed_era_bucketing(self, corpus):
        """Frame-based fig5 must reproduce the pre-refactor loop exactly on
        the bundled corpus (labels, split, curve order, point values)."""
        from repro.meta import standardized_initial_sizes
        from repro.meta.corpus_data import _MAGNITUDE_VARIANT_METHODS

        std_sizes = standardized_initial_sizes(corpus)
        base_top1 = IMAGENET_BASELINES["ResNet-50"][0]
        old_mag, old_others = [], []
        for rc in corpus.curves_for_pair("ImageNet", "ResNet-50"):
            xs, ys = [], []
            for pt in rc.points:
                if pt.compression is None or pt.delta_top1 is None:
                    continue
                std = std_sizes.get("ResNet-50")
                if std is None:
                    continue
                xs.append(std / pt.compression)
                ys.append(base_top1 + pt.delta_top1)
            if not xs:
                continue
            order = np.argsort(xs)
            paper = corpus.papers[rc.paper_key]
            label = (f"{paper.label}, {rc.method}"
                     if rc.method != paper.label else paper.label)
            curve = (label, [xs[i] for i in order], [ys[i] for i in order],
                     rc.paper_key, paper.year)
            if (rc.paper_key, rc.method) in _MAGNITUDE_VARIANT_METHODS:
                old_mag.append(curve)
            else:
                old_others.append(curve)
        new_mag, new_others = fig5_split(corpus)
        for old_list, new_list in ((old_mag, new_mag), (old_others, new_others)):
            got = [(c.label, c.xs, c.ys, c.paper_key, c.year) for c in new_list]
            assert got == old_list


class TestChecklistAudit:
    def _results(self, seeds=(0, 1, 2), comps=(1, 2, 4, 8, 16, 32),
                 strategies=("global_weight", "random")):
        rs = ResultSet()
        for s in seeds:
            for c in comps:
                for strat in strategies:
                    drop = 0.0 if c <= 4 else 0.2
                    rs.add(PruningResult(
                        model="m", dataset="d", strategy=strat,
                        compression=float(c), seed=s,
                        actual_compression=float(c), theoretical_speedup=float(c) ** 0.8,
                        baseline_top1=0.9, top1=0.9 - drop,
                        dense_flops=100.0, effective_flops=100.0 / c,
                    ))
        return rs

    def test_full_protocol_passes(self):
        items = audit_results(self._results())
        assert all(i.passed for i in items), [str(i) for i in items if not i.passed]

    def test_single_seed_fails_seed_item(self):
        items = audit_results(self._results(seeds=(0,)))
        failed = [i.item for i in items if not i.passed]
        assert any("seeds" in f for f in failed)

    def test_few_points_fails_range_item(self):
        items = audit_results(self._results(comps=(1, 2)))
        failed = [i.item for i in items if not i.passed]
        assert any("compression ratios" in f for f in failed)

    def test_missing_random_baseline_detected(self):
        items = audit_results(self._results(strategies=("global_weight",)))
        failed = [i.item for i in items if not i.passed]
        assert any("random" in f for f in failed)

    def test_str_rendering(self):
        items = audit_results(self._results())
        assert all(str(i).startswith("[PASS]") or str(i).startswith("[FAIL]")
                   for i in items)
