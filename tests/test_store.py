"""Binary column store: equivalence with the JSON paths, crash recovery,
supersession, CLI round-trips, and results-server integration.

The load-bearing guarantee is *point-for-point equivalence*: a frame read
back from the store must be indistinguishable — column order, dtypes,
values including inf/NaN and ``extra`` payloads — from the frame the JSON
path (``from_cache`` / ``from_queue`` / ``from_json``) builds over the
same rows, because ``repro report`` output must be byte-identical across
the two.
"""

import json
import math
import os

import numpy as np
import pytest

from exp_fixtures import crashy_spec
from repro.analysis.frame import ResultFrame, load_frame
from repro.experiment.cache import ResultCache, spec_hash
from repro.experiment.prune import ExperimentSpec
from repro.experiment.queue import QueueWorker, WorkQueue
from repro.experiment.results import PruningResult
from repro.store import ColumnStore, StoreError, StoreLockTimeout, is_store_dir


def synth_spec(i: int) -> ExperimentSpec:
    return ExperimentSpec(
        model="lenet-300-100", dataset="cifar10",
        strategy=("global_weight", "random")[i % 2],
        compression=float((2, 4, 8)[i % 3]), seed=i,
    )


def synth_row(spec: ExperimentSpec, i: int) -> PruningResult:
    extra = {"kernel_backend": "fast"} if i % 2 else {}
    return PruningResult(
        model=spec.model, dataset=spec.dataset, strategy=spec.strategy,
        compression=spec.compression, seed=spec.seed,
        # exercise the non-finite paths: all-pruned masks report inf
        # compression, missing metrics report NaN
        actual_compression=float("inf") if i % 5 == 0 else spec.compression * 1.1,
        theoretical_speedup=spec.compression * 0.8,
        total_params=266_610, nonzero_params=266_610 // int(spec.compression),
        dense_flops=5.3e5, effective_flops=5.3e5 / spec.compression,
        baseline_top1=0.61, baseline_top5=0.95,
        pre_finetune_top1=0.31, pre_finetune_top5=0.71,
        top1=float("nan") if i % 7 == 0 else 0.5 + i / 100.0, top5=0.93,
        pretrained_key="t", finetune_epochs_ran=i, extra=extra,
    )


def fill_cache(root, n: int = 20) -> ResultCache:
    cache = ResultCache(root)
    for i in range(n):
        spec = synth_spec(i)
        cache.put(spec, synth_row(spec, i))
    return cache


def assert_frames_identical(a: ResultFrame, b: ResultFrame) -> None:
    """Column order, length, and every cell (NaN-aware, type-strict)."""
    assert a.columns == b.columns
    assert len(a) == len(b)
    for i, (ra, rb) in enumerate(zip(a.to_records(), b.to_records())):
        for name in ra:
            va, vb = ra[name], rb[name]
            if isinstance(va, float) and isinstance(vb, float) \
                    and math.isnan(va) and math.isnan(vb):
                continue
            assert type(va) is type(vb), (i, name, va, vb)
            assert va == vb, (i, name, va, vb)


class TestEquivalence:
    def test_cache_ingest_matches_from_cache(self, tmp_path):
        cache = fill_cache(tmp_path / "cache")
        store = ColumnStore(tmp_path / "store")
        stats = store.ingest(cache.root)
        assert stats["rows_appended"] == 20 and stats["rows_skipped"] == 0
        assert_frames_identical(store.to_frame(),
                                ResultFrame.from_cache(cache.root))

    def test_chunked_ingest_matches_single_chunk(self, tmp_path):
        cache = fill_cache(tmp_path / "cache")
        chunked = ColumnStore(tmp_path / "chunked")
        stats = chunked.ingest(cache.root, chunk_rows=3)
        assert stats["segments_added"] == 7  # ceil(20 / 3)
        assert_frames_identical(chunked.to_frame(),
                                ResultFrame.from_cache(cache.root))

    def test_results_json_ingest_matches_from_json(self, tmp_path):
        cache = fill_cache(tmp_path / "cache")
        path = tmp_path / "results.json"
        ResultFrame.from_cache(cache.root).save(path)
        store = ColumnStore(tmp_path / "store")
        store.ingest(path, chunk_rows=6)
        assert_frames_identical(store.to_frame(), ResultFrame.from_json(path))

    def test_queue_ingest_matches_from_queue_incl_quarantine(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", max_retries=0)
        cache = ResultCache(tmp_path / "q" / "cache")
        ok = crashy_spec(cell="store-ok")
        bad = crashy_spec(cell="store-bad", behavior="raise")
        queue.submit(ok)
        queue.submit(bad)
        QueueWorker(queue, cache, worker_id="w1").run(idle_timeout=0.0,
                                                      poll_interval=0.01)
        store = ColumnStore(tmp_path / "store")
        store.ingest(tmp_path / "q")
        frame = store.to_frame()
        assert_frames_identical(frame, ResultFrame.from_queue(tmp_path / "q"))
        failed = frame.column("extra")[np.array(
            [bool(e and e.get("failed")) for e in frame.column("extra")]
        )]
        assert len(failed) == 1  # the quarantined cell rides along

    def test_load_frame_sniffs_store_dir(self, tmp_path):
        cache = fill_cache(tmp_path / "cache", n=4)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        assert is_store_dir(store.root)
        assert not is_store_dir(cache.root)
        assert_frames_identical(load_frame(store.root),
                                load_frame(cache.root))

    def test_report_identical_from_store_and_cache(self, tmp_path):
        from repro.analysis import build_report, report_json_text

        cache = fill_cache(tmp_path / "cache")
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        via_cache = report_json_text(build_report(load_frame(cache.root)))
        via_store = report_json_text(build_report(load_frame(store.root)))
        assert via_store == via_cache


class TestSupersession:
    def test_reingest_is_idempotent(self, tmp_path):
        cache = fill_cache(tmp_path / "cache")
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        again = store.ingest(cache.root)
        assert again["rows_appended"] == 0 and again["rows_skipped"] == 20
        assert store.rows() == 20

    def test_new_generation_supersedes_on_read(self, tmp_path):
        cache = fill_cache(tmp_path / "cache", n=4)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        spec = synth_spec(1)
        newer = synth_row(spec, 1)
        newer.top1 = 0.999
        cache.put(spec, newer)
        store.ingest(cache.root, skip_existing=False)
        frame = store.to_frame()
        assert len(frame) == 4  # deduped by spec hash, not 4 + 4
        row = frame.filter(seed=1)
        assert row.column("top1")[0] == 0.999  # last generation wins
        # rows() still counts stored generations until compact
        assert store.rows() == 8
        result = store.compact()
        assert result["rows_after"] == 4
        assert store.rows() == 4
        assert_frames_identical(store.to_frame(), frame)

    def test_compact_coalesces_and_preserves_order(self, tmp_path):
        cache = fill_cache(tmp_path / "cache")
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root, chunk_rows=3)
        before = store.to_frame()
        result = store.compact()
        assert result["segments_before"] == 7
        assert result["segments_after"] == 1
        assert_frames_identical(store.to_frame(), before)

    def test_fingerprint_tracks_content(self, tmp_path):
        cache = fill_cache(tmp_path / "cache", n=4)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        fp = store.fingerprint()
        assert store.ingest(cache.root)["rows_appended"] == 0
        assert store.fingerprint() == fp  # idempotent re-ingest: unchanged
        spec = synth_spec(99)
        cache.put(spec, synth_row(spec, 99))
        store.ingest(cache.root)
        assert store.fingerprint() != fp


class TestCrashRecovery:
    def test_manifest_never_references_torn_segment(self, tmp_path, monkeypatch):
        cache = fill_cache(tmp_path / "cache", n=6)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        good = store.to_frame()
        fp = store.fingerprint()

        def boom(manifest):
            raise OSError("disk full")

        monkeypatch.setattr(ColumnStore, "_write_manifest",
                            lambda self, m: boom(m))
        with pytest.raises(OSError):
            store.append_rows([synth_row(synth_spec(50), 50)],
                              keys=[spec_hash(synth_spec(50))])
        monkeypatch.undo()
        # the crashed append left a sealed-but-unreferenced dir; readers
        # see the old generation, bit for bit
        assert store.fingerprint() == fp
        assert_frames_identical(store.to_frame(), good)
        live = {s["name"] for s in store._require_manifest()["segments"]}
        on_disk = {p.name for p in store.segments_dir.iterdir()}
        assert on_disk - live  # the torn segment is on disk ...
        store.compact()
        on_disk = {p.name for p in store.segments_dir.iterdir()}
        assert len(on_disk) == 1  # ... until compact sweeps it
        assert_frames_identical(store.to_frame(), good)

    def test_lock_contention_times_out(self, tmp_path):
        store = ColumnStore(tmp_path / "store", lock_timeout=0.2)
        store.append_rows([synth_row(synth_spec(0), 0)])
        lock = store.root / ".lock"
        lock.write_text("12345\n")
        with pytest.raises(StoreLockTimeout):
            store.append_rows([synth_row(synth_spec(1), 1)])
        assert store.rows() == 1

    def test_stale_lock_is_broken(self, tmp_path):
        store = ColumnStore(tmp_path / "store", lock_timeout=0.5)
        store.append_rows([synth_row(synth_spec(0), 0)])
        lock = store.root / ".lock"
        lock.write_text("12345\n")
        old = 1_000_000.0
        os.utime(lock, (old, old))
        store.append_rows([synth_row(synth_spec(1), 1)])
        assert store.rows() == 2

    def test_schema_mismatch_is_loud(self, tmp_path):
        store = ColumnStore(tmp_path / "store")
        store.append_rows([synth_row(synth_spec(0), 0)])
        manifest = json.loads(store.manifest_path.read_text())
        manifest["schema"] = 999
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="schema 999"):
            store.to_frame()


class TestWorkerPublish:
    def test_worker_mirrors_rows_to_store(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        cache = ResultCache(tmp_path / "q" / "cache")
        spec = crashy_spec(cell="store-pub")
        queue.submit(spec)
        store_dir = tmp_path / "store"
        worker = QueueWorker(queue, cache, worker_id="w1", store=store_dir)
        assert worker.run_once() is True
        store = ColumnStore(store_dir)
        # the cell row plus the synthesized baseline, keyed by spec hash
        assert store.rows() == 2
        assert spec_hash(spec) in store.keys()
        # publish order is completion order, from_cache is hash order —
        # compare as sets of rows
        key = lambda r: (r["strategy"], r["seed"])
        mirrored = sorted(store.to_frame().to_records(), key=key)
        cached = sorted(ResultFrame.from_cache(cache.root).to_records(),
                        key=key)
        assert mirrored == cached

    def test_store_failure_does_not_fail_the_cell(self, tmp_path, monkeypatch):
        queue = WorkQueue(tmp_path / "q")
        cache = ResultCache(tmp_path / "q" / "cache")
        spec = crashy_spec(cell="store-pub2")
        queue.submit(spec)
        worker = QueueWorker(queue, cache, worker_id="w1",
                             store=tmp_path / "store")
        monkeypatch.setattr(
            type(worker.store), "append_rows",
            lambda self, rows, keys=None: (_ for _ in ()).throw(
                RuntimeError("store offline")),
        )
        assert worker.run_once() is True  # best-effort mirror
        assert queue.state(spec_hash(spec)) == "done"
        assert cache.get(spec) is not None


class TestColumnEdgeCases:
    def test_column_union_across_segments(self, tmp_path):
        store = ColumnStore(tmp_path / "store")
        store.append_frame(ResultFrame.from_records(
            [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]))
        store.append_frame(ResultFrame.from_records(
            [{"a": 3, "c": 0.5}, {"a": 4, "c": 1.5}]))
        frame = store.to_frame()
        assert frame.columns == ["a", "b", "c"]
        assert frame.column("a").tolist() == [1, 2, 3, 4]
        assert frame.column("b").tolist() == ["x", "y", None, None]
        b = frame.column("c")
        assert np.isnan(b[:2]).all() and b[2:].tolist() == [0.5, 1.5]

    def test_int_then_float_widens(self, tmp_path):
        store = ColumnStore(tmp_path / "store")
        store.append_frame(ResultFrame.from_records([{"v": 1}]))
        store.append_frame(ResultFrame.from_records([{"v": 2.5}]))
        v = store.to_frame().column("v")
        assert v.dtype == np.float64 and v.tolist() == [1.0, 2.5]

    def test_unstorable_column_name_rejected(self, tmp_path):
        store = ColumnStore(tmp_path / "store")
        with pytest.raises(StoreError, match="keys"):
            store.append_frame(ResultFrame.from_records([{"keys": 1}]))
        assert not store.exists()  # nothing half-written

    def test_empty_store_roundtrip(self, tmp_path):
        store = ColumnStore(tmp_path / "store")
        assert store.append_frame(ResultFrame.from_records([])) is None
        with pytest.raises(FileNotFoundError):
            store.to_frame()


class TestStoreCLI:
    def test_ingest_stats_compact_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        cache = fill_cache(tmp_path / "cache", n=7)
        store_dir = tmp_path / "store"
        assert main(["store", "ingest", str(cache.root), str(store_dir),
                     "--chunk-rows", "2"]) == 0
        out = capsys.readouterr().out
        assert "rows appended  : 7" in out
        assert main(["store", "stats", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "rows        : 7" in out and "segments    : 4" in out
        assert main(["store", "compact", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "segments : 4 -> 1" in out
        assert main(["report", str(store_dir), "--json", "-"]) == 0

    def test_ingest_missing_source_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["store", "ingest", str(tmp_path / "nope"),
                     str(tmp_path / "store")]) == 2
        assert "nothing to ingest" in capsys.readouterr().err

    def test_stats_on_non_store_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["store", "stats", str(tmp_path)]) == 2
        assert "no store at" in capsys.readouterr().err


class TestServeIntegration:
    def test_store_source_kind_and_manifest_fingerprint(self, tmp_path):
        from repro.serve import FrameSource

        cache = fill_cache(tmp_path / "cache", n=5)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        source = FrameSource("s", path=store.root)
        assert source.kind == "store"
        snapshot = source.load()
        # ETags key on the manifest fingerprint — no frame re-hash
        assert snapshot.fingerprint == store.fingerprint()
        assert len(snapshot.frame) == 5

    def test_reload_on_append_and_compact(self, tmp_path):
        from repro.serve import FrameSource

        cache = fill_cache(tmp_path / "cache", n=3)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        source = FrameSource("s", path=store.root)
        source.load()
        assert source.maybe_reload() is False
        spec = synth_spec(77)
        cache.put(spec, synth_row(spec, 77))
        store.ingest(cache.root)
        assert source.maybe_reload() is True
        assert len(source.snapshot().frame) == 4
        assert source.snapshot().fingerprint == store.fingerprint()


# ---------------------------------------------------------------------------
# zone maps: recording, backfill, and predicate pushdown (PR 9)
# ---------------------------------------------------------------------------

def probe_store(tmp_path) -> ColumnStore:
    """Three hand-built segments exercising every zone-map edge: NaN and
    ±inf numerics, a null-bearing object column, int/float columns whose
    ranges separate cleanly across segments."""
    store = ColumnStore(tmp_path / "probe_store")
    store.append_frame(ResultFrame.from_records([
        {"i": 1, "f": 0.5, "s": "alpha"},
        {"i": 2, "f": float("nan"), "s": "beta"},
    ]))
    store.append_frame(ResultFrame.from_records([
        {"i": 5, "f": float("inf"), "s": "gamma"},
        {"i": 7, "f": float("-inf"), "s": None},
    ]))
    store.append_frame(ResultFrame.from_records([
        {"i": -3, "f": 2.25, "s": "alpha"},
    ]))
    return store


def strip_stats(store: ColumnStore) -> ColumnStore:
    """Rewrite the manifest without ``stats`` — a pre-PR-9 legacy store."""
    manifest = json.loads(store.manifest_path.read_text())
    for entry in manifest["segments"]:
        entry.pop("stats", None)
    store.manifest_path.write_text(json.dumps(manifest, indent=1))
    return ColumnStore(store.root)


#: (column, condition) pairs covering all 8 ops × int64/float64/object
#: × NaN/±inf probe values; every one must be byte-equal to its
#: full-scan twin, with or without zone maps
PUSHDOWN_CASES = [
    ("i", {"op": "==", "value": 2}),
    ("i", {"op": "==", "value": 100}),          # no match: all skipped
    ("i", {"op": "!=", "value": 5}),
    ("i", {"op": "<", "value": 0}),
    ("i", {"op": "<=", "value": 1}),
    ("i", {"op": ">", "value": 6}),
    ("i", {"op": ">=", "value": 7}),
    ("i", {"op": "in", "value": [2, 7]}),
    ("i", {"op": "not-in", "value": [1, 2, 5, 7, -3]}),
    ("f", {"op": "==", "value": 0.5}),
    ("f", {"op": "==", "value": float("inf")}),
    ("f", {"op": "==", "value": float("nan")}),   # matches nothing
    ("f", {"op": "!=", "value": 0.5}),            # NaN rows DO match !=
    ("f", {"op": "<", "value": 0.0}),
    ("f", {"op": "<=", "value": float("-inf")}),
    ("f", {"op": ">", "value": 100.0}),
    ("f", {"op": ">=", "value": 2.25}),
    ("f", {"op": "<", "value": float("nan")}),    # all-False, skippable
    ("f", {"op": "in", "value": [0.5, float("inf")]}),
    ("f", {"op": "not-in", "value": [0.5, 2.25]}),
    ("s", {"op": "==", "value": "alpha"}),
    ("s", {"op": "==", "value": "nope"}),
    ("s", {"op": "!=", "value": "alpha"}),
    ("s", {"op": "in", "value": ["alpha", "gamma"]}),
    ("s", {"op": "not-in", "value": ["alpha", "beta", "gamma"]}),
    ("s", "beta"),                                # scalar = equality
    ("i", [5, -3]),                               # bare list = membership
]


class TestZoneMaps:
    def test_stats_recorded_at_append(self, tmp_path):
        store = probe_store(tmp_path)
        segments = store.segments()
        assert all(isinstance(e.get("stats"), dict) for e in segments)
        s0 = segments[0]["stats"]
        assert s0["i"] == {"min": 1, "max": 2, "nulls": 0}
        # NaN is counted as a null and excluded from the bounds
        assert s0["f"]["nulls"] == 1 and s0["f"]["min"] == 0.5
        assert s0["s"] == {"nulls": 0, "values": ["alpha", "beta"]}
        # ±inf round-trips through the strict-JSON sentinel encoding
        s1 = json.loads(store.manifest_path.read_text())["segments"][1]
        assert s1["stats"]["f"]["max"] == {"__nonfinite__": "inf"}
        assert s1["stats"]["f"]["min"] == {"__nonfinite__": "-inf"}
        assert s1["stats"]["s"]["nulls"] == 1

    def test_large_pools_omit_values(self, tmp_path):
        from repro.store import ZONE_MAP_MAX_VALUES

        store = ColumnStore(tmp_path / "store")
        n = ZONE_MAP_MAX_VALUES + 1
        store.append_frame(ResultFrame.from_records(
            [{"s": f"v{j:04d}"} for j in range(n)]))
        (entry,) = store.segments()
        assert "values" not in entry["stats"]["s"]
        assert entry["stats"]["s"]["nulls"] == 0
        # no pool → the planner cannot prune, but reads stay correct
        plan = store.scan_plan(where={"s": "v0000"})
        assert plan["segments_selected"] == 1
        assert len(store.to_frame(where={"s": "v0000"})) == 1

    def test_analyze_backfills_and_keeps_fingerprint(self, tmp_path):
        store = probe_store(tmp_path)
        with_stats = store.segments()
        fp = store.fingerprint()
        legacy = strip_stats(store)
        assert all("stats" not in e for e in legacy.segments())
        # stats are deliberately outside the fingerprint: stripping or
        # backfilling them never invalidates ETags or change detection
        assert legacy.fingerprint() == fp
        result = legacy.analyze()
        assert result == {"segments": 3, "analyzed": 3}
        assert legacy.segments() == with_stats
        assert legacy.fingerprint() == fp
        # idempotent: a second pass finds nothing to do
        assert legacy.analyze() == {"segments": 3, "analyzed": 0}

    def test_compact_backfills_stats(self, tmp_path):
        legacy = strip_stats(probe_store(tmp_path))
        legacy.compact()
        (entry,) = legacy.segments()
        assert isinstance(entry["stats"], dict)
        assert entry["stats"]["i"] == {"min": -3, "max": 7, "nulls": 0}


class TestPushdown:
    @pytest.mark.parametrize("column,cond", PUSHDOWN_CASES)
    def test_pushdown_equals_fullscan_twin(self, tmp_path, column, cond):
        store = probe_store(tmp_path)
        where = {column: cond}
        expect = store.to_frame().filter(**where)
        assert_frames_identical(store.to_frame(where=where), expect)
        # the same predicate over a legacy store (no stats: nothing is
        # skipped), then again after analyze backfills the zone maps
        legacy = strip_stats(store)
        assert_frames_identical(legacy.to_frame(where=where), expect)
        legacy.analyze()
        assert_frames_identical(legacy.to_frame(where=where), expect)

    def test_plan_actually_skips(self, tmp_path):
        store = probe_store(tmp_path)
        plan = store.scan_plan(where={"i": {"op": ">", "value": 4}})
        assert plan["segments_total"] == 3
        assert plan["segments_selected"] == 1  # only segment 2 can match
        assert plan["rows_total"] == 5 and plan["rows_selected"] == 2
        # a predicate nothing satisfies prunes everything
        none = store.scan_plan(where={"i": {"op": "==", "value": 100}})
        assert none["segments_selected"] == 0
        assert len(store.to_frame(where={"i": 100})) == 0
        # no stats → conservative: every segment is selected
        legacy = strip_stats(store)
        assert legacy.scan_plan(where={"i": {"op": ">", "value": 4}})[
            "segments_selected"] == 3

    def test_projection_loads_requested_columns_only(self, tmp_path):
        store = probe_store(tmp_path)
        frame = store.to_frame(columns=["f", "i"])
        # the projection keeps the requested order
        assert frame.columns == ["f", "i"]
        plan = store.scan_plan(where={"i": {"op": "<", "value": 0}},
                               columns=["s"])
        # the filter column is loaded for masking even when not projected
        assert sorted(plan["columns_loaded"]) == ["i", "s"]

    def test_unknown_columns_fail_loudly(self, tmp_path):
        store = probe_store(tmp_path)
        with pytest.raises(KeyError, match="unknown column 'nope'"):
            store.to_frame(columns=["nope"])
        with pytest.raises(KeyError, match="unknown filter column 'nope'"):
            store.to_frame(where={"nope": 1})
        with pytest.raises(ValueError, match="callable"):
            store.to_frame(where={"i": lambda v: v > 0})

    def test_ordering_on_object_column_matches_fullscan(self, tmp_path):
        # string ordering on object columns: the planner evaluates the
        # condition against each segment's value pool, so the segment
        # holding only "gamma"/None is provably unmatched and skipped —
        # and the surviving rows still match the full scan byte for byte
        store = probe_store(tmp_path)
        where = {"s": {"op": "<", "value": "beta"}}
        assert store.scan_plan(where=where)["segments_selected"] == 2
        assert_frames_identical(store.to_frame(where=where),
                                store.to_frame().filter(**where))

    def test_superseded_rows_stay_dead_when_segment_skipped(self, tmp_path):
        store = ColumnStore(tmp_path / "store")
        store.append_frame(ResultFrame.from_records([{"x": 1}]), keys=["k"])
        store.append_frame(ResultFrame.from_records([{"x": 100}]), keys=["k"])
        # x == 1 prunes the superseding segment; the stale generation in
        # the surviving segment must NOT resurface
        assert store.scan_plan(where={"x": 1})["segments_selected"] == 1
        assert len(store.to_frame(where={"x": 1})) == 0
        frame = store.to_frame(where={"x": 100})
        assert frame.column("x").tolist() == [100]

    def test_pushdown_on_real_sweep_rows(self, tmp_path):
        cache = fill_cache(tmp_path / "cache", n=24)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root, chunk_rows=6)
        where = {"strategy": "random",
                 "compression": {"op": ">=", "value": 4.0}}
        assert_frames_identical(store.to_frame(where=where),
                                store.to_frame().filter(**where))


class TestApplyStore:
    QUERIES = [
        {"filter": {"seed": {"op": "<", "value": 6}}, "sort": ["seed"]},
        {"filter": {"strategy": "random"},
         "columns": ["strategy", "seed", "top1"], "limit": 3},
        {"filter": {"compression": {"op": "in", "value": [4.0, 8.0]}},
         "aggregate": {"by": ["strategy", "compression"],
                       "values": ["top1"]}},
        {"group_by": ["strategy", "compression"], "sort": ["n"],
         "limit": 2, "offset": 1},
        {},
    ]

    @pytest.mark.parametrize("spec", QUERIES)
    def test_apply_store_matches_apply(self, tmp_path, spec):
        from repro.analysis.query import compile_query

        cache = fill_cache(tmp_path / "cache", n=24)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root, chunk_rows=6)
        query = compile_query(spec)
        a = query.apply_store(store)
        b = query.apply(store.to_frame())
        assert json.dumps(a, default=float) == json.dumps(b, default=float)

    def test_apply_store_error_parity(self, tmp_path):
        from repro.analysis.query import QueryError, compile_query

        cache = fill_cache(tmp_path / "cache", n=6)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        frame = store.to_frame()
        for spec in ({"filter": {"nope": 1}},
                     {"columns": ["nope"]},
                     {"sort": ["nope"]},
                     {"aggregate": {"by": ["nope"]}},
                     # sort names a pre-aggregation column: both paths
                     # must reject it against the aggregated vocabulary
                     {"group_by": ["strategy"], "sort": ["seed"]}):
            query = compile_query(spec)
            with pytest.raises(QueryError) as via_store:
                query.apply_store(store)
            with pytest.raises(QueryError) as via_frame:
                query.apply(frame)
            assert str(via_store.value) == str(via_frame.value)


class TestIncrementalReport:
    def make_store(self, tmp_path, with_sentinels: bool = True):
        from repro.experiment.prune import BASELINE_STRATEGY

        cache = fill_cache(tmp_path / "cache", n=24)
        if with_sentinels:
            spec = ExperimentSpec(
                model="lenet-300-100", dataset="cifar10",
                strategy=BASELINE_STRATEGY, compression=1.0, seed=0)
            row = synth_row(spec, 3)
            cache.put(spec, row)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root, chunk_rows=7)
        return store

    def assert_reports_byte_equal(self, store, y="top1", outstanding=None):
        from repro.analysis.report import (
            _build_report_incremental,
            build_report,
            report_json_text,
        )

        # call the incremental builder directly so a silent fallback can
        # never make this test vacuous
        incremental = _build_report_incremental(
            store, store._require_manifest(), y, outstanding)
        full = build_report(store.to_frame(), y=y, outstanding=outstanding)
        assert report_json_text(incremental) == report_json_text(full)

    def test_byte_equal_with_baseline_sentinels(self, tmp_path):
        self.assert_reports_byte_equal(self.make_store(tmp_path))

    def test_byte_equal_without_sentinels_y_top5(self, tmp_path):
        store = self.make_store(tmp_path, with_sentinels=False)
        self.assert_reports_byte_equal(store, y="top5")

    def test_byte_equal_after_compact_and_outstanding(self, tmp_path):
        store = self.make_store(tmp_path)
        store.compact()
        self.assert_reports_byte_equal(
            store, outstanding={"pending": 2, "leased": 1})

    def test_fallback_is_byte_equal_too(self, tmp_path, monkeypatch):
        import repro.analysis.report as report_mod
        from repro.analysis.report import (
            build_report,
            build_report_from_store,
            report_json_text,
        )

        store = self.make_store(tmp_path)
        # when the incremental plan bails, the public entry point must
        # fall back to materialize-then-report transparently
        monkeypatch.setattr(
            report_mod, "_build_report_incremental",
            lambda *a, **k: (_ for _ in ()).throw(
                report_mod._IncrementalFallback()))
        assert report_json_text(build_report_from_store(store)) == \
            report_json_text(build_report(store.to_frame()))

    def test_report_cli_routes_store_through_incremental(
            self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        store = self.make_store(tmp_path)
        assert main(["report", str(tmp_path / "cache"), "--json", "-"]) == 0
        from_cache = capsys.readouterr().out
        called = []
        import repro.analysis.report as report_mod

        original = report_mod._build_report_incremental

        def spy(*args, **kwargs):
            called.append(True)
            return original(*args, **kwargs)

        monkeypatch.setattr(report_mod, "_build_report_incremental", spy)
        assert main(["report", str(store.root), "--json", "-"]) == 0
        from_store = capsys.readouterr().out
        assert called, "store report did not take the incremental path"
        assert from_store == from_cache


class TestStoreCLIProgress:
    def test_ingest_prints_chunk_progress(self, tmp_path, capsys):
        from repro.cli import main

        cache = fill_cache(tmp_path / "cache", n=7)
        assert main(["store", "ingest", str(cache.root),
                     str(tmp_path / "store"), "--chunk-rows", "3"]) == 0
        out = capsys.readouterr().out
        assert "chunk 1/3 (3 rows)" in out
        assert "chunk 3/3 (1 rows)" in out

    def test_ingest_quiet_suppresses_progress(self, tmp_path, capsys):
        from repro.cli import main

        cache = fill_cache(tmp_path / "cache", n=7)
        assert main(["store", "ingest", str(cache.root),
                     str(tmp_path / "store"), "--chunk-rows", "3",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "chunk" not in out
        assert "rows appended  : 7" in out

    def test_stats_segments_renders_zone_maps(self, tmp_path, capsys):
        from repro.cli import main

        store = probe_store(tmp_path)
        assert main(["store", "stats", str(store.root), "--segments"]) == 0
        out = capsys.readouterr().out
        assert "5 row(s)" not in out  # per-segment, not the union
        assert "2 row(s), unkeyed" in out
        assert "min 1, max 2" in out          # segment 0 int bounds
        assert "min -inf, max inf" in out     # segment 1 restores ±inf
        assert "2 distinct value(s)" in out
        strip_stats(store)
        assert main(["store", "stats", str(store.root), "--segments"]) == 0
        out = capsys.readouterr().out
        assert "no zone-map stats" in out and "store analyze" in out
        assert main(["store", "analyze", str(store.root)]) == 0
        assert "analyzed : 3" in capsys.readouterr().out


class TestServePushdown:
    def test_store_snapshot_carries_planner_handles(self, tmp_path):
        from repro.serve import FrameSource

        cache = fill_cache(tmp_path / "cache", n=6)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        snapshot = FrameSource("s", path=store.root).load()
        assert snapshot.store is not None
        assert snapshot.store_manifest["fingerprint"] == store.fingerprint()
        # non-store sources must NOT grow the handles
        memory = FrameSource.from_frame("m", store.to_frame()).load()
        assert memory.store is None

    def test_store_report_text_matches_full_build(self, tmp_path):
        from repro.analysis.report import build_report, report_json_text
        from repro.serve import FrameSource

        cache = fill_cache(tmp_path / "cache", n=12)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root, chunk_rows=5)
        snapshot = FrameSource("s", path=store.root).load()
        expected = report_json_text(build_report(
            store.to_frame(), outstanding=snapshot.outstanding))
        assert snapshot.report_text("top1") == expected

    def test_query_falls_back_when_store_torn(self, tmp_path, monkeypatch):
        import repro.analysis.query as query_mod
        from repro.analysis.query import compile_query
        from repro.serve import FrameSource, ResultsServer

        cache = fill_cache(tmp_path / "cache", n=8)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        server = ResultsServer([FrameSource("s", path=store.root)])
        source = server.sources["s"]
        source.load()
        spec = {"filter": {"seed": {"op": "<", "value": 4}},
                "sort": ["seed"]}
        expected = compile_query(spec).apply(store.to_frame())
        monkeypatch.setattr(
            query_mod.Query, "apply_store",
            lambda self, st, manifest=None: (_ for _ in ()).throw(
                OSError("segment deleted by racing compact")))
        response = server.dispatch(
            "POST", "/query", {}, json.dumps(spec).encode())
        assert response.status == 200
        payload = json.loads(response.text)
        assert payload["rows"] == json.loads(
            json.dumps(expected["rows"], default=float))
