"""Binary column store: equivalence with the JSON paths, crash recovery,
supersession, CLI round-trips, and results-server integration.

The load-bearing guarantee is *point-for-point equivalence*: a frame read
back from the store must be indistinguishable — column order, dtypes,
values including inf/NaN and ``extra`` payloads — from the frame the JSON
path (``from_cache`` / ``from_queue`` / ``from_json``) builds over the
same rows, because ``repro report`` output must be byte-identical across
the two.
"""

import json
import math
import os

import numpy as np
import pytest

from exp_fixtures import crashy_spec
from repro.analysis.frame import ResultFrame, load_frame
from repro.experiment.cache import ResultCache, spec_hash
from repro.experiment.prune import ExperimentSpec
from repro.experiment.queue import QueueWorker, WorkQueue
from repro.experiment.results import PruningResult
from repro.store import ColumnStore, StoreError, StoreLockTimeout, is_store_dir


def synth_spec(i: int) -> ExperimentSpec:
    return ExperimentSpec(
        model="lenet-300-100", dataset="cifar10",
        strategy=("global_weight", "random")[i % 2],
        compression=float((2, 4, 8)[i % 3]), seed=i,
    )


def synth_row(spec: ExperimentSpec, i: int) -> PruningResult:
    extra = {"kernel_backend": "fast"} if i % 2 else {}
    return PruningResult(
        model=spec.model, dataset=spec.dataset, strategy=spec.strategy,
        compression=spec.compression, seed=spec.seed,
        # exercise the non-finite paths: all-pruned masks report inf
        # compression, missing metrics report NaN
        actual_compression=float("inf") if i % 5 == 0 else spec.compression * 1.1,
        theoretical_speedup=spec.compression * 0.8,
        total_params=266_610, nonzero_params=266_610 // int(spec.compression),
        dense_flops=5.3e5, effective_flops=5.3e5 / spec.compression,
        baseline_top1=0.61, baseline_top5=0.95,
        pre_finetune_top1=0.31, pre_finetune_top5=0.71,
        top1=float("nan") if i % 7 == 0 else 0.5 + i / 100.0, top5=0.93,
        pretrained_key="t", finetune_epochs_ran=i, extra=extra,
    )


def fill_cache(root, n: int = 20) -> ResultCache:
    cache = ResultCache(root)
    for i in range(n):
        spec = synth_spec(i)
        cache.put(spec, synth_row(spec, i))
    return cache


def assert_frames_identical(a: ResultFrame, b: ResultFrame) -> None:
    """Column order, length, and every cell (NaN-aware, type-strict)."""
    assert a.columns == b.columns
    assert len(a) == len(b)
    for i, (ra, rb) in enumerate(zip(a.to_records(), b.to_records())):
        for name in ra:
            va, vb = ra[name], rb[name]
            if isinstance(va, float) and isinstance(vb, float) \
                    and math.isnan(va) and math.isnan(vb):
                continue
            assert type(va) is type(vb), (i, name, va, vb)
            assert va == vb, (i, name, va, vb)


class TestEquivalence:
    def test_cache_ingest_matches_from_cache(self, tmp_path):
        cache = fill_cache(tmp_path / "cache")
        store = ColumnStore(tmp_path / "store")
        stats = store.ingest(cache.root)
        assert stats["rows_appended"] == 20 and stats["rows_skipped"] == 0
        assert_frames_identical(store.to_frame(),
                                ResultFrame.from_cache(cache.root))

    def test_chunked_ingest_matches_single_chunk(self, tmp_path):
        cache = fill_cache(tmp_path / "cache")
        chunked = ColumnStore(tmp_path / "chunked")
        stats = chunked.ingest(cache.root, chunk_rows=3)
        assert stats["segments_added"] == 7  # ceil(20 / 3)
        assert_frames_identical(chunked.to_frame(),
                                ResultFrame.from_cache(cache.root))

    def test_results_json_ingest_matches_from_json(self, tmp_path):
        cache = fill_cache(tmp_path / "cache")
        path = tmp_path / "results.json"
        ResultFrame.from_cache(cache.root).save(path)
        store = ColumnStore(tmp_path / "store")
        store.ingest(path, chunk_rows=6)
        assert_frames_identical(store.to_frame(), ResultFrame.from_json(path))

    def test_queue_ingest_matches_from_queue_incl_quarantine(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", max_retries=0)
        cache = ResultCache(tmp_path / "q" / "cache")
        ok = crashy_spec(cell="store-ok")
        bad = crashy_spec(cell="store-bad", behavior="raise")
        queue.submit(ok)
        queue.submit(bad)
        QueueWorker(queue, cache, worker_id="w1").run(idle_timeout=0.0,
                                                      poll_interval=0.01)
        store = ColumnStore(tmp_path / "store")
        store.ingest(tmp_path / "q")
        frame = store.to_frame()
        assert_frames_identical(frame, ResultFrame.from_queue(tmp_path / "q"))
        failed = frame.column("extra")[np.array(
            [bool(e and e.get("failed")) for e in frame.column("extra")]
        )]
        assert len(failed) == 1  # the quarantined cell rides along

    def test_load_frame_sniffs_store_dir(self, tmp_path):
        cache = fill_cache(tmp_path / "cache", n=4)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        assert is_store_dir(store.root)
        assert not is_store_dir(cache.root)
        assert_frames_identical(load_frame(store.root),
                                load_frame(cache.root))

    def test_report_identical_from_store_and_cache(self, tmp_path):
        from repro.analysis import build_report, report_json_text

        cache = fill_cache(tmp_path / "cache")
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        via_cache = report_json_text(build_report(load_frame(cache.root)))
        via_store = report_json_text(build_report(load_frame(store.root)))
        assert via_store == via_cache


class TestSupersession:
    def test_reingest_is_idempotent(self, tmp_path):
        cache = fill_cache(tmp_path / "cache")
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        again = store.ingest(cache.root)
        assert again["rows_appended"] == 0 and again["rows_skipped"] == 20
        assert store.rows() == 20

    def test_new_generation_supersedes_on_read(self, tmp_path):
        cache = fill_cache(tmp_path / "cache", n=4)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        spec = synth_spec(1)
        newer = synth_row(spec, 1)
        newer.top1 = 0.999
        cache.put(spec, newer)
        store.ingest(cache.root, skip_existing=False)
        frame = store.to_frame()
        assert len(frame) == 4  # deduped by spec hash, not 4 + 4
        row = frame.filter(seed=1)
        assert row.column("top1")[0] == 0.999  # last generation wins
        # rows() still counts stored generations until compact
        assert store.rows() == 8
        result = store.compact()
        assert result["rows_after"] == 4
        assert store.rows() == 4
        assert_frames_identical(store.to_frame(), frame)

    def test_compact_coalesces_and_preserves_order(self, tmp_path):
        cache = fill_cache(tmp_path / "cache")
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root, chunk_rows=3)
        before = store.to_frame()
        result = store.compact()
        assert result["segments_before"] == 7
        assert result["segments_after"] == 1
        assert_frames_identical(store.to_frame(), before)

    def test_fingerprint_tracks_content(self, tmp_path):
        cache = fill_cache(tmp_path / "cache", n=4)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        fp = store.fingerprint()
        assert store.ingest(cache.root)["rows_appended"] == 0
        assert store.fingerprint() == fp  # idempotent re-ingest: unchanged
        spec = synth_spec(99)
        cache.put(spec, synth_row(spec, 99))
        store.ingest(cache.root)
        assert store.fingerprint() != fp


class TestCrashRecovery:
    def test_manifest_never_references_torn_segment(self, tmp_path, monkeypatch):
        cache = fill_cache(tmp_path / "cache", n=6)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        good = store.to_frame()
        fp = store.fingerprint()

        def boom(manifest):
            raise OSError("disk full")

        monkeypatch.setattr(ColumnStore, "_write_manifest",
                            lambda self, m: boom(m))
        with pytest.raises(OSError):
            store.append_rows([synth_row(synth_spec(50), 50)],
                              keys=[spec_hash(synth_spec(50))])
        monkeypatch.undo()
        # the crashed append left a sealed-but-unreferenced dir; readers
        # see the old generation, bit for bit
        assert store.fingerprint() == fp
        assert_frames_identical(store.to_frame(), good)
        live = {s["name"] for s in store._require_manifest()["segments"]}
        on_disk = {p.name for p in store.segments_dir.iterdir()}
        assert on_disk - live  # the torn segment is on disk ...
        store.compact()
        on_disk = {p.name for p in store.segments_dir.iterdir()}
        assert len(on_disk) == 1  # ... until compact sweeps it
        assert_frames_identical(store.to_frame(), good)

    def test_lock_contention_times_out(self, tmp_path):
        store = ColumnStore(tmp_path / "store", lock_timeout=0.2)
        store.append_rows([synth_row(synth_spec(0), 0)])
        lock = store.root / ".lock"
        lock.write_text("12345\n")
        with pytest.raises(StoreLockTimeout):
            store.append_rows([synth_row(synth_spec(1), 1)])
        assert store.rows() == 1

    def test_stale_lock_is_broken(self, tmp_path):
        store = ColumnStore(tmp_path / "store", lock_timeout=0.5)
        store.append_rows([synth_row(synth_spec(0), 0)])
        lock = store.root / ".lock"
        lock.write_text("12345\n")
        old = 1_000_000.0
        os.utime(lock, (old, old))
        store.append_rows([synth_row(synth_spec(1), 1)])
        assert store.rows() == 2

    def test_schema_mismatch_is_loud(self, tmp_path):
        store = ColumnStore(tmp_path / "store")
        store.append_rows([synth_row(synth_spec(0), 0)])
        manifest = json.loads(store.manifest_path.read_text())
        manifest["schema"] = 999
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="schema 999"):
            store.to_frame()


class TestWorkerPublish:
    def test_worker_mirrors_rows_to_store(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        cache = ResultCache(tmp_path / "q" / "cache")
        spec = crashy_spec(cell="store-pub")
        queue.submit(spec)
        store_dir = tmp_path / "store"
        worker = QueueWorker(queue, cache, worker_id="w1", store=store_dir)
        assert worker.run_once() is True
        store = ColumnStore(store_dir)
        # the cell row plus the synthesized baseline, keyed by spec hash
        assert store.rows() == 2
        assert spec_hash(spec) in store.keys()
        # publish order is completion order, from_cache is hash order —
        # compare as sets of rows
        key = lambda r: (r["strategy"], r["seed"])
        mirrored = sorted(store.to_frame().to_records(), key=key)
        cached = sorted(ResultFrame.from_cache(cache.root).to_records(),
                        key=key)
        assert mirrored == cached

    def test_store_failure_does_not_fail_the_cell(self, tmp_path, monkeypatch):
        queue = WorkQueue(tmp_path / "q")
        cache = ResultCache(tmp_path / "q" / "cache")
        spec = crashy_spec(cell="store-pub2")
        queue.submit(spec)
        worker = QueueWorker(queue, cache, worker_id="w1",
                             store=tmp_path / "store")
        monkeypatch.setattr(
            type(worker.store), "append_rows",
            lambda self, rows, keys=None: (_ for _ in ()).throw(
                RuntimeError("store offline")),
        )
        assert worker.run_once() is True  # best-effort mirror
        assert queue.state(spec_hash(spec)) == "done"
        assert cache.get(spec) is not None


class TestColumnEdgeCases:
    def test_column_union_across_segments(self, tmp_path):
        store = ColumnStore(tmp_path / "store")
        store.append_frame(ResultFrame.from_records(
            [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]))
        store.append_frame(ResultFrame.from_records(
            [{"a": 3, "c": 0.5}, {"a": 4, "c": 1.5}]))
        frame = store.to_frame()
        assert frame.columns == ["a", "b", "c"]
        assert frame.column("a").tolist() == [1, 2, 3, 4]
        assert frame.column("b").tolist() == ["x", "y", None, None]
        b = frame.column("c")
        assert np.isnan(b[:2]).all() and b[2:].tolist() == [0.5, 1.5]

    def test_int_then_float_widens(self, tmp_path):
        store = ColumnStore(tmp_path / "store")
        store.append_frame(ResultFrame.from_records([{"v": 1}]))
        store.append_frame(ResultFrame.from_records([{"v": 2.5}]))
        v = store.to_frame().column("v")
        assert v.dtype == np.float64 and v.tolist() == [1.0, 2.5]

    def test_unstorable_column_name_rejected(self, tmp_path):
        store = ColumnStore(tmp_path / "store")
        with pytest.raises(StoreError, match="keys"):
            store.append_frame(ResultFrame.from_records([{"keys": 1}]))
        assert not store.exists()  # nothing half-written

    def test_empty_store_roundtrip(self, tmp_path):
        store = ColumnStore(tmp_path / "store")
        assert store.append_frame(ResultFrame.from_records([])) is None
        with pytest.raises(FileNotFoundError):
            store.to_frame()


class TestStoreCLI:
    def test_ingest_stats_compact_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        cache = fill_cache(tmp_path / "cache", n=7)
        store_dir = tmp_path / "store"
        assert main(["store", "ingest", str(cache.root), str(store_dir),
                     "--chunk-rows", "2"]) == 0
        out = capsys.readouterr().out
        assert "rows appended  : 7" in out
        assert main(["store", "stats", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "rows        : 7" in out and "segments    : 4" in out
        assert main(["store", "compact", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "segments : 4 -> 1" in out
        assert main(["report", str(store_dir), "--json", "-"]) == 0

    def test_ingest_missing_source_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["store", "ingest", str(tmp_path / "nope"),
                     str(tmp_path / "store")]) == 2
        assert "nothing to ingest" in capsys.readouterr().err

    def test_stats_on_non_store_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["store", "stats", str(tmp_path)]) == 2
        assert "no store at" in capsys.readouterr().err


class TestServeIntegration:
    def test_store_source_kind_and_manifest_fingerprint(self, tmp_path):
        from repro.serve import FrameSource

        cache = fill_cache(tmp_path / "cache", n=5)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        source = FrameSource("s", path=store.root)
        assert source.kind == "store"
        snapshot = source.load()
        # ETags key on the manifest fingerprint — no frame re-hash
        assert snapshot.fingerprint == store.fingerprint()
        assert len(snapshot.frame) == 5

    def test_reload_on_append_and_compact(self, tmp_path):
        from repro.serve import FrameSource

        cache = fill_cache(tmp_path / "cache", n=3)
        store = ColumnStore(tmp_path / "store")
        store.ingest(cache.root)
        source = FrameSource("s", path=store.root)
        source.load()
        assert source.maybe_reload() is False
        spec = synth_spec(77)
        cache.put(spec, synth_row(spec, 77))
        store.ingest(cache.root)
        assert source.maybe_reload() is True
        assert len(source.snapshot().frame) == 4
        assert source.snapshot().fingerprint == store.fingerprint()
