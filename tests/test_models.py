"""Unit tests for the model zoo."""

import numpy as np
import pytest

from repro.autograd import Tensor, cross_entropy
from repro.models import (
    CifarResNet,
    available_models,
    create_model,
    register_model,
)
from repro.nn import Linear


def fwd(model, channels=3, size=16, batch=2):
    x = Tensor(np.random.default_rng(0).normal(size=(batch, channels, size, size)).astype(np.float32))
    return model(x)


class TestRegistry:
    def test_all_models_listed(self):
        names = available_models()
        for expected in ["resnet-20", "resnet-56", "resnet-110", "resnet-18",
                         "cifar-vgg", "lenet-5", "lenet-300-100", "mobilenet-small"]:
            assert expected in names

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            create_model("resnet-9000")

    def test_register_custom_and_reject_duplicate(self):
        register_model("custom-test-model", lambda **kw: Linear(2, 2))
        assert "custom-test-model" in available_models()
        with pytest.raises(ValueError):
            register_model("custom-test-model", lambda **kw: Linear(2, 2))

    @pytest.mark.parametrize("name", ["resnet-20", "resnet-56", "cifar-vgg", "mobilenet-small"])
    def test_forward_shapes_cifar_style(self, name):
        kw = dict(width_scale=0.25)
        if name == "cifar-vgg":
            kw["input_size"] = 16
        m = create_model(name, **kw)
        out = fwd(m)
        assert out.shape == (2, 10)

    def test_resnet18_shape(self):
        m = create_model("resnet-18", width_scale=0.25, num_classes=20)
        assert fwd(m).shape == (2, 20)

    def test_lenets(self):
        m5 = create_model("lenet-5", input_size=28, in_channels=1)
        m3 = create_model("lenet-300-100", input_size=28, in_channels=1)
        assert fwd(m5, channels=1, size=28).shape == (2, 10)
        assert fwd(m3, channels=1, size=28).shape == (2, 10)

    def test_lenet_300_100_param_count(self):
        # the canonical 784-300-100-10 network
        m = create_model("lenet-300-100", input_size=28, in_channels=1)
        want = 784 * 300 + 300 + 300 * 100 + 100 + 100 * 10 + 10
        assert m.num_parameters() == want


class TestResNetStructure:
    def test_depth_formula(self):
        for depth, blocks in [(20, 9), (56, 27), (110, 54)]:
            m = CifarResNet(depth, width_scale=0.25)
            assert len(list(m.blocks)) == blocks

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            CifarResNet(21)

    def test_width_scale_shrinks_params(self):
        big = create_model("resnet-20", width_scale=1.0).num_parameters()
        small = create_model("resnet-20", width_scale=0.5).num_parameters()
        assert small < big / 3  # ~quadratic in width

    def test_classifier_property(self):
        for name in ["resnet-20", "cifar-vgg", "lenet-5", "resnet-18", "mobilenet-small"]:
            kw = {"width_scale": 0.25} if name != "lenet-5" else {}
            m = create_model(name, **kw)
            assert isinstance(m.classifier, Linear)

    def test_seed_determinism(self):
        a = create_model("resnet-20", width_scale=0.25, seed=3)
        b = create_model("resnet-20", width_scale=0.25, seed=3)
        np.testing.assert_array_equal(a.stem.weight.data, b.stem.weight.data)
        c = create_model("resnet-20", width_scale=0.25, seed=4)
        assert not np.array_equal(a.stem.weight.data, c.stem.weight.data)

    def test_state_dict_roundtrip_resnet(self):
        a = create_model("resnet-20", width_scale=0.25, seed=0)
        b = create_model("resnet-20", width_scale=0.25, seed=9)
        b.load_state_dict(a.state_dict())
        xa = fwd(a.eval()).data
        xb = fwd(b.eval()).data
        np.testing.assert_allclose(xa, xb, rtol=1e-5)

    def test_trainable_end_to_end(self):
        # single overfit step reduces loss on one batch
        from repro.optim import Adam

        m = create_model("resnet-20", width_scale=0.25)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(16, 3, 8, 8)).astype(np.float32))
        y = rng.integers(0, 10, 16)
        opt = Adam(list(m.parameters()), lr=1e-2)
        losses = []
        for _ in range(12):
            loss = cross_entropy(m(x), y)
            m.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.7


class TestVGGStructure:
    def test_small_input_skips_excess_pools(self):
        m = create_model("cifar-vgg", width_scale=0.125, input_size=8)
        assert fwd(m, size=8).shape == (2, 10)

    def test_imagenet_stem_for_large_inputs(self):
        m = create_model("resnet-18", width_scale=0.125, input_size=64)
        out = fwd(m, size=64)
        assert out.shape == (2, 20)
