"""Unit tests for the Module system, layers and initializers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
    init,
)


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8)
        self.fc2 = Linear(8, 2)

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestModuleSystem:
    def test_parameter_registration(self):
        m = TwoLayer()
        names = [n for n, _ in m.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_num_parameters(self):
        m = TwoLayer()
        assert m.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_modules_traversal(self):
        m = TwoLayer()
        kinds = [type(x).__name__ for x in m.modules()]
        assert kinds == ["TwoLayer", "Linear", "Linear"]

    def test_state_dict_roundtrip(self):
        m1, m2 = TwoLayer(), TwoLayer()
        m2.fc1.weight.data += 1.0
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_allclose(m1.fc1.weight.data, m2.fc1.weight.data)

    def test_state_dict_returns_copies(self):
        m = TwoLayer()
        state = m.state_dict()
        state["fc1.weight"] += 99
        assert not np.allclose(m.fc1.weight.data, state["fc1.weight"])

    def test_load_state_dict_shape_mismatch(self):
        m = TwoLayer()
        bad = m.state_dict()
        bad["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            m.load_state_dict(bad)

    def test_load_state_dict_missing_key_strict(self):
        m = TwoLayer()
        state = m.state_dict()
        del state["fc2.bias"]
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_load_state_dict_non_strict(self):
        m = TwoLayer()
        m.load_state_dict({}, strict=False)  # no-op, no error

    def test_train_eval_propagates(self):
        m = Sequential(Linear(2, 2), BatchNorm2d(2))
        m.eval()
        assert all(not child.training for child in m.children())
        m.train()
        assert all(child.training for child in m.children())

    def test_zero_grad(self):
        m = TwoLayer()
        out = m(Tensor(np.ones((1, 4), dtype=np.float32)))
        out.sum().backward()
        assert m.fc1.weight.grad is not None
        m.zero_grad()
        assert m.fc1.weight.grad is None

    def test_forward_hook_fires_and_removes(self):
        m = Linear(2, 2)
        calls = []
        remove = m.register_forward_hook(lambda mod, args, out: calls.append(out.shape))
        m(Tensor(np.ones((3, 2), dtype=np.float32)))
        assert calls == [(3, 2)]
        remove()
        m(Tensor(np.ones((3, 2), dtype=np.float32)))
        assert len(calls) == 1

    def test_buffers_in_state_dict(self):
        bn = BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_load_updates_buffers_in_place(self):
        bn = BatchNorm2d(2)
        ref = bn.running_mean  # the layer holds this exact array
        state = bn.state_dict()
        state["running_mean"] = np.array([5.0, 6.0], dtype=np.float32)
        bn.load_state_dict(state)
        np.testing.assert_allclose(ref, [5.0, 6.0])


class TestContainers:
    def test_sequential_order(self):
        m = Sequential(Linear(2, 3), ReLU(), Linear(3, 1))
        out = m(Tensor(np.ones((1, 2), dtype=np.float32)))
        assert out.shape == (1, 1)
        assert len(m) == 3
        assert isinstance(m[1], ReLU)

    def test_modulelist_registers(self):
        ml = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(list(ml.parameters())) == 4
        assert len(ml) == 2
        with pytest.raises(RuntimeError):
            ml(None)


class TestLayers:
    def test_linear_shapes_and_no_bias(self):
        m = Linear(5, 3, bias=False)
        assert m.bias is None
        out = m(Tensor(np.ones((2, 5), dtype=np.float32)))
        assert out.shape == (2, 3)

    def test_conv_shape(self):
        m = Conv2d(3, 8, 3, stride=2, padding=1)
        out = m(Tensor(np.ones((1, 3, 8, 8), dtype=np.float32)))
        assert out.shape == (1, 8, 4, 4)

    def test_pool_layers(self):
        x = Tensor(np.ones((1, 2, 8, 8), dtype=np.float32))
        assert MaxPool2d(2)(x).shape == (1, 2, 4, 4)
        assert AvgPool2d(4)(x).shape == (1, 2, 2, 2)
        assert GlobalAvgPool2d()(x).shape == (1, 2)

    def test_flatten_identity(self):
        x = Tensor(np.ones((2, 3, 4, 4), dtype=np.float32))
        assert Flatten()(x).shape == (2, 48)
        assert Identity()(x) is x

    def test_dropout_respects_mode(self):
        m = Dropout(0.9, rng=np.random.default_rng(0))
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        m.eval()
        np.testing.assert_allclose(m(x).data, x.data)
        m.train()
        assert (m(x).data == 0).any()

    def test_batchnorm_params_and_buffers(self):
        bn = BatchNorm2d(5)
        assert bn.weight.shape == (5,)
        assert bn.running_mean.shape == (5,)

    def test_reprs(self):
        assert "Linear" in repr(Linear(2, 2))
        assert "Conv2d" in repr(Conv2d(1, 1, 3))
        assert "Sequential" in repr(Sequential(ReLU()))


class TestInit:
    def test_fan_in_out_linear(self):
        assert init.fan_in_and_out((8, 4)) == (4, 8)

    def test_fan_in_out_conv(self):
        assert init.fan_in_and_out((16, 8, 3, 3)) == (8 * 9, 16 * 9)

    def test_fan_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            init.fan_in_and_out((4,))

    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_normal((256, 128), rng)
        assert w.std() == pytest.approx(np.sqrt(2 / 128), rel=0.1)

    def test_kaiming_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((64, 64), rng)
        bound = np.sqrt(6 / 64)
        assert np.abs(w).max() <= bound

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.xavier_normal((200, 200), rng)
        assert w.std() == pytest.approx(np.sqrt(2 / 400), rel=0.1)

    def test_deterministic_given_rng(self):
        a = init.kaiming_normal((4, 4), np.random.default_rng(7))
        b = init.kaiming_normal((4, 4), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
