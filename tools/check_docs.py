#!/usr/bin/env python
"""Documentation checks: relative-link integrity + quickstart extraction.

Two modes, both used by CI (and runnable locally):

``python tools/check_docs.py --links [FILES...]``
    Verify that every relative markdown link target in the given files
    (default: all tracked ``*.md``) exists on disk.  External links
    (http/https/mailto) and pure anchors are skipped.  Exit 1 listing the
    broken links otherwise.

``python tools/check_docs.py --extract-quickstart README.md [--block N]``
    Print the Nth fenced ``bash`` block (0-based, default 0 — the
    quickstart) to stdout, so CI can execute README snippets *verbatim*::

        python tools/check_docs.py --extract-quickstart README.md | bash -e
        python tools/check_docs.py --extract-quickstart README.md --block 1 | bash -e
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: [text](target) — excluding images; target captured up to ) or #anchor
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")
_FENCE = re.compile(r"^```bash\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def iter_md_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        parts = path.relative_to(root).parts
        # skip hidden dirs (virtualenvs, .git, tool caches) and vendored /
        # generated trees — only repo-owned docs are link-checked
        if any(part.startswith(".") or part in
               {"__pycache__", "artifacts", "node_modules"}
               for part in parts[:-1]):
            continue
        yield path


def check_links(root: Path, files) -> int:
    broken = []
    for md in files:
        text = md.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                continue
            resolved = (md.parent / target).resolve()
            if not resolved.exists():
                try:
                    shown = md.relative_to(root)
                except ValueError:  # explicit file outside the repo root
                    shown = md
                broken.append(f"{shown}: broken link -> {target}")
    for line in broken:
        print(line, file=sys.stderr)
    if not broken:
        print(f"doc links OK ({len(list(files)) or 'no'} file(s))")
    return 1 if broken else 0


def extract_quickstart(path: Path, block: int = 0) -> int:
    matches = _FENCE.findall(path.read_text(encoding="utf-8"))
    if block >= len(matches):
        print(f"{path}: has {len(matches)} ```bash block(s), "
              f"no index {block}", file=sys.stderr)
        return 1
    sys.stdout.write(matches[block].lstrip("\n"))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--links", action="store_true",
                      help="check relative markdown links resolve")
    mode.add_argument("--extract-quickstart", metavar="MD",
                      help="print one of the file's ```bash blocks")
    parser.add_argument("--block", type=int, default=0, metavar="N",
                        help="which ```bash block to extract "
                             "(0-based, default: the first)")
    parser.add_argument("files", nargs="*",
                        help="markdown files for --links (default: all)")
    args = parser.parse_args(argv)
    root = Path(__file__).resolve().parent.parent
    if args.extract_quickstart:
        return extract_quickstart(Path(args.extract_quickstart), args.block)
    files = ([Path(f).resolve() for f in args.files] if args.files
             else list(iter_md_files(root)))
    return check_links(root, files)


if __name__ == "__main__":
    sys.exit(main())
